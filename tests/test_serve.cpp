// Unit tests for the serving layer: request model, arrival traces, the
// continuous-batch scheduler, and the end-to-end server simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "serve/arrivals.hpp"
#include "serve/server.hpp"

namespace monde::serve {
namespace {

/// A small MoE model that keeps cycle-level simulations fast.
moe::MoeModelConfig tiny_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;
  m.vocab_size = 8192;
  m.top_k = 2;
  m.name = "tiny-test-model";
  return m;
}

core::InferenceEngine make_engine(core::StrategyKind kind, std::uint64_t seed = 42) {
  return core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                               moe::SkewProfile::switch_like(), kind, seed};
}

RequestShape small_shape() {
  RequestShape s;
  s.prompt_min = 16;
  s.prompt_max = 48;
  s.new_tokens_min = 2;
  s.new_tokens_max = 8;
  return s;
}

std::vector<Request> test_trace() {
  return poisson_trace(12, /*rate_per_s=*/40.0, small_shape(), /*seed=*/5);
}

// --- Request / arrivals -------------------------------------------------------

TEST(Request, ValidationCatchesBadRequests) {
  Request rq{0, Duration::zero(), 8, 4};
  EXPECT_NO_THROW(rq.validate());
  rq.prompt_len = 0;
  EXPECT_THROW(rq.validate(), Error);
  rq = {1, Duration::zero(), 8, 0};
  EXPECT_THROW(rq.validate(), Error);
  rq = {2, Duration::zero() - Duration::nanos(1), 8, 4};
  EXPECT_THROW(rq.validate(), Error);
}

TEST(Arrivals, ClosedLoopAllAtTimeZero) {
  const auto trace = closed_loop_trace(10, small_shape(), 1);
  ASSERT_EQ(trace.size(), 10u);
  for (const auto& rq : trace) {
    EXPECT_EQ(rq.arrival, Duration::zero());
    EXPECT_GE(rq.prompt_len, 16);
    EXPECT_LE(rq.prompt_len, 48);
    EXPECT_GE(rq.max_new_tokens, 2);
    EXPECT_LE(rq.max_new_tokens, 8);
  }
}

TEST(Arrivals, IdsAreSequentialAndUnique) {
  const auto trace = poisson_trace(20, 10.0, small_shape(), 2);
  std::set<std::uint64_t> ids;
  for (const auto& rq : trace) ids.insert(rq.id);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 19u);
}

TEST(Arrivals, PoissonMeanInterArrivalMatchesRate) {
  const auto trace = poisson_trace(4000, 25.0, small_shape(), 3);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);  // sorted, non-negative gaps
  }
  const double mean_gap_s = trace.back().arrival.sec() / static_cast<double>(trace.size());
  EXPECT_NEAR(mean_gap_s, 1.0 / 25.0, 0.004);
}

TEST(Arrivals, BurstyGroupsArrivals) {
  const auto trace = bursty_trace(9, 3, Duration::millis(10), small_shape(), 4);
  ASSERT_EQ(trace.size(), 9u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i].arrival.ms(), 10.0 * static_cast<double>(i / 3));
  }
}

TEST(Arrivals, DeterministicGivenSeed) {
  const auto a = poisson_trace(16, 10.0, small_shape(), 9);
  const auto b = poisson_trace(16, 10.0, small_shape(), 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].max_new_tokens, b[i].max_new_tokens);
  }
}

TEST(Arrivals, RejectsBadParameters) {
  EXPECT_THROW((void)closed_loop_trace(0, small_shape(), 1), Error);
  EXPECT_THROW((void)poisson_trace(4, 0.0, small_shape(), 1), Error);
  EXPECT_THROW((void)bursty_trace(4, 0, Duration::millis(1), small_shape(), 1), Error);
  EXPECT_THROW((void)bursty_trace(4, 2, Duration::zero(), small_shape(), 1), Error);
  RequestShape bad = small_shape();
  bad.prompt_max = bad.prompt_min - 1;
  EXPECT_THROW((void)closed_loop_trace(4, bad, 1), Error);
}

// --- Scheduler ----------------------------------------------------------------

TEST(Scheduler, ConfigValidation) {
  SchedulerConfig cfg;
  cfg.token_budget = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = SchedulerConfig{};
  cfg.fixed_batch = cfg.token_budget + 1;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(Scheduler, ContinuousAdmitsWithinBudget) {
  SchedulerConfig cfg;
  cfg.token_budget = 100;
  ContinuousBatchScheduler sched{cfg};
  // Three requests with 40-token prompts: only two fit (40+40+2 <= 100).
  sched.submit({{0, Duration::zero(), 40, 4},
                {1, Duration::zero(), 40, 4},
                {2, Duration::zero(), 40, 4}});
  sched.release_arrivals(Duration::zero());
  EXPECT_EQ(sched.admit().size(), 2u);
  EXPECT_EQ(sched.active().size(), 2u);
  // The third waits until slots free up; with two active decode slots,
  // 40 + 2 + 1 <= 100 fits on the next boundary.
  EXPECT_EQ(sched.admit().size(), 1u);
}

TEST(Scheduler, OversizedPromptAdmittedAloneOnEmptyServer) {
  SchedulerConfig cfg;
  cfg.token_budget = 32;
  cfg.fixed_batch = 1;
  ContinuousBatchScheduler sched{cfg};
  sched.submit({{0, Duration::zero(), 100, 2}, {1, Duration::zero(), 8, 2}});
  sched.release_arrivals(Duration::zero());
  const auto first = sched.admit();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0]->request.prompt_len, 100);
  EXPECT_EQ(sched.active().size(), 1u);
}

TEST(Scheduler, FixedWaitsForFullBatch) {
  SchedulerConfig cfg;
  cfg.mode = BatchingMode::kFixed;
  cfg.fixed_batch = 2;
  ContinuousBatchScheduler sched{cfg};
  sched.submit({{0, Duration::zero(), 8, 2}, {1, Duration::millis(5), 8, 2}});
  sched.release_arrivals(Duration::zero());
  EXPECT_TRUE(sched.admit().empty());  // waits: a second arrival is still due
  EXPECT_DOUBLE_EQ(sched.next_arrival().ms(), 5.0);
  sched.release_arrivals(Duration::millis(5));
  EXPECT_EQ(sched.admit().size(), 2u);
}

TEST(Scheduler, MergedStepWorksConserveRoutedTokens) {
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  SchedulerConfig cfg;
  ContinuousBatchScheduler sched{cfg};
  sched.submit({{0, Duration::zero(), 8, 4}, {1, Duration::zero(), 8, 4}});
  sched.release_arrivals(Duration::zero());
  ASSERT_EQ(sched.admit().size(), 2u);
  const auto works = sched.step_works(engine.workload());
  ASSERT_EQ(works.size(), 2u);  // tiny model: 2 decoder MoE layers
  for (const auto& w : works) {
    EXPECT_EQ(w.total_tokens, 2);
    EXPECT_EQ(w.routed_tokens(), 2u * 2u);  // 2 requests x top-2
  }
}

TEST(Scheduler, BurstAdmissionDrainsFifoWithinBudget) {
  // Regression for the O(n^2) vector-head erase in admit(): an arrival flood
  // must admit strictly in FIFO order and within the token budget every step.
  SchedulerConfig cfg;
  cfg.token_budget = 64;
  ContinuousBatchScheduler sched{cfg};
  std::vector<Request> trace;
  const int n = 2000;
  trace.reserve(n);
  for (int i = 0; i < n; ++i) {
    trace.push_back({static_cast<std::uint64_t>(i), Duration::zero(), 4, 2});
  }
  sched.submit(std::move(trace));
  sched.release_arrivals(Duration::zero());
  std::uint64_t next_expected = 0;
  Duration t = Duration::zero();
  while (!sched.drained()) {
    const auto newly = sched.admit();
    std::int64_t prefill = 0;
    for (const RequestState* rs : newly) {
      EXPECT_EQ(rs->request.id, next_expected++);
      prefill += rs->request.prompt_len;
    }
    EXPECT_LE(prefill + static_cast<std::int64_t>(sched.active().size()), cfg.token_budget);
    ASSERT_FALSE(sched.active().empty());
    t += Duration::millis(1);
    sched.complete_step(t);
  }
  EXPECT_EQ(next_expected, static_cast<std::uint64_t>(n));
}

TEST(Scheduler, FixedModePadsDoneSlotsAtFrozenDepth) {
  // Regression: complete_step() used to advance the decode depth of already
  // -done padded slots, so slots() reported depths for tokens that never
  // surfaced (inflating the attention price of fixed-mode padding).
  SchedulerConfig cfg;
  cfg.mode = BatchingMode::kFixed;
  cfg.fixed_batch = 2;
  ContinuousBatchScheduler sched{cfg};
  sched.submit({{0, Duration::zero(), 8, 1}, {1, Duration::zero(), 8, 3}});
  sched.release_arrivals(Duration::zero());
  ASSERT_EQ(sched.admit().size(), 2u);

  sched.complete_step(Duration::millis(1));  // both surface a token; req 0 done
  auto slots = sched.slots();
  ASSERT_EQ(slots.size(), 2u);  // the padded slot still occupies the batch
  EXPECT_EQ(slots[0].step, 1);
  EXPECT_EQ(slots[1].step, 1);

  sched.complete_step(Duration::millis(2));  // only req 1 advances
  slots = sched.slots();
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].step, 1);  // frozen at its final depth (KV stops growing)
  EXPECT_EQ(slots[1].step, 2);
  EXPECT_EQ(sched.states()[0].generated, 1);  // padding surfaces no tokens

  sched.complete_step(Duration::millis(3));  // req 1 finishes -> batch drains
  EXPECT_TRUE(sched.drained());
  EXPECT_EQ(sched.states()[1].generated, 3);
  EXPECT_DOUBLE_EQ(sched.states()[0].completion.ms(), 1.0);
  EXPECT_DOUBLE_EQ(sched.states()[1].completion.ms(), 3.0);
}

// --- ServerSim ----------------------------------------------------------------

TEST(ServerSim, NextEventTimeWaitsOnUnfilledFixedBatch) {
  // An under-full fixed batch on an unsealed server cannot step until more
  // arrivals come or drain() seals it; next_event_time() must say so
  // (infinite) rather than advertise the current boundary forever.
  SchedulerConfig cfg;
  cfg.mode = BatchingMode::kFixed;
  cfg.fixed_batch = 4;
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  ServerSim sim{engine, cfg};
  sim.enqueue({0, Duration::zero(), 8, 2});
  sim.advance_to(Duration::millis(1));  // releases the arrival; batch stays under-full
  EXPECT_EQ(sim.in_flight(), 1u);
  EXPECT_EQ(sim.next_event_time(), Duration::infinite());
  sim.drain();  // seal -> the partial batch finally admits
  EXPECT_TRUE(sim.drained());
  EXPECT_EQ(sim.report().requests.size(), 1u);
}

TEST(ServerSim, IncrementalEventApiMatchesOneShotRun) {
  // Feeding the trace through enqueue()/advance_to()/drain() -- the path a
  // cluster dispatcher drives -- must reproduce run() exactly.
  const auto trace = test_trace();
  SchedulerConfig cfg;
  auto ref_engine = make_engine(core::StrategyKind::kMondeLoadBalanced, 7);
  const ServeReport once = ServerSim{ref_engine, cfg}.run(trace);

  auto inc_engine = make_engine(core::StrategyKind::kMondeLoadBalanced, 7);
  ServerSim inc{inc_engine, cfg};
  auto sorted = trace;
  std::sort(sorted.begin(), sorted.end(), arrival_order<Request>);
  for (const Request& rq : sorted) {
    inc.advance_to(rq.arrival);
    inc.enqueue(rq);
  }
  inc.drain();
  const ServeReport rep = inc.report();

  ASSERT_EQ(rep.requests.size(), once.requests.size());
  for (std::size_t i = 0; i < rep.requests.size(); ++i) {
    EXPECT_EQ(rep.requests[i].id, once.requests[i].id);
    EXPECT_DOUBLE_EQ(rep.requests[i].ttft().ns(), once.requests[i].ttft().ns());
    EXPECT_DOUBLE_EQ(rep.requests[i].e2e().ns(), once.requests[i].e2e().ns());
  }
  ASSERT_EQ(rep.steps.size(), once.steps.size());
  EXPECT_DOUBLE_EQ(rep.makespan.ns(), once.makespan.ns());
  EXPECT_DOUBLE_EQ(rep.busy.ns(), once.busy.ns());
}

TEST(ServerSim, NextEventTimeAndLoadAccessorsTrackQueueState) {
  SchedulerConfig cfg;
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  ServerSim sim{engine, cfg};
  EXPECT_EQ(sim.next_event_time(), Duration::infinite());  // waits on enqueue()
  EXPECT_EQ(sim.in_flight(), 0u);

  sim.enqueue({0, Duration::millis(5), 8, 2});
  EXPECT_DOUBLE_EQ(sim.next_event_time().ms(), 5.0);  // idle until the arrival
  EXPECT_EQ(sim.in_flight(), 1u);
  EXPECT_EQ(sim.outstanding_tokens(), 10);  // 8 prompt + 2 decode tokens owed

  // advance_to is strictly-before: the step starting at t=5 is deferred so
  // the caller may still enqueue same-instant arrivals.
  sim.advance_to(Duration::millis(5));
  EXPECT_EQ(sim.in_flight(), 1u);
  EXPECT_FALSE(sim.drained());

  sim.drain();
  EXPECT_TRUE(sim.drained());
  EXPECT_GT(sim.now(), Duration::millis(5));
  EXPECT_EQ(sim.in_flight(), 0u);
  EXPECT_EQ(sim.outstanding_tokens(), 0);
  const ServeReport rep = sim.report();
  ASSERT_EQ(rep.requests.size(), 1u);
  EXPECT_EQ(rep.requests[0].generated, 2);
}

TEST(ServerSim, ContinuousBeatsFixedOnPoissonTrace) {
  const auto trace = test_trace();
  SchedulerConfig cfg;
  cfg.token_budget = 128;
  cfg.fixed_batch = 4;

  cfg.mode = BatchingMode::kFixed;
  auto fixed_engine = make_engine(core::StrategyKind::kMondeLoadBalanced);
  const ServeReport fixed = ServerSim{fixed_engine, cfg}.run(trace);

  cfg.mode = BatchingMode::kContinuous;
  auto cont_engine = make_engine(core::StrategyKind::kMondeLoadBalanced);
  const ServeReport cont = ServerSim{cont_engine, cfg}.run(trace);

  EXPECT_EQ(fixed.generated_tokens, cont.generated_tokens);  // same useful work
  EXPECT_GT(cont.tokens_per_s, fixed.tokens_per_s);          // strictly faster
  EXPECT_LT(cont.ttft_ms.p99, fixed.ttft_ms.p99);            // no batch-fill wait
}

TEST(ServerSim, PerRequestLatenciesDeterministicGivenSeed) {
  const auto trace = test_trace();
  SchedulerConfig cfg;
  const auto run_once = [&] {
    auto engine = make_engine(core::StrategyKind::kMondeLoadBalanced, 7);
    return ServerSim{engine, cfg}.run(trace);
  };
  const ServeReport a = run_once();
  const ServeReport b = run_once();
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_DOUBLE_EQ(a.requests[i].ttft().ns(), b.requests[i].ttft().ns());
    EXPECT_DOUBLE_EQ(a.requests[i].tpot().ns(), b.requests[i].tpot().ns());
    EXPECT_DOUBLE_EQ(a.requests[i].e2e().ns(), b.requests[i].e2e().ns());
  }
  EXPECT_DOUBLE_EQ(a.makespan.ns(), b.makespan.ns());
}

TEST(ServerSim, RespectsTokenBudgetEveryStep) {
  SchedulerConfig cfg;
  cfg.token_budget = 96;  // tight: forces queueing on this trace
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  const ServeReport rep = ServerSim{engine, cfg}.run(test_trace());
  ASSERT_FALSE(rep.steps.empty());
  for (const auto& step : rep.steps) {
    EXPECT_LE(step.prefill_tokens + step.decode_tokens, cfg.token_budget)
        << "step " << step.index;
    EXPECT_GE(step.end, step.start);
  }
}

TEST(ServerSim, EveryRequestCompletesWithConsistentMetrics) {
  SchedulerConfig cfg;
  auto engine = make_engine(core::StrategyKind::kMondeLoadBalanced);
  const auto trace = test_trace();
  const ServeReport rep = ServerSim{engine, cfg}.run(trace);
  ASSERT_EQ(rep.requests.size(), trace.size());
  std::uint64_t expected_tokens = 0;
  for (const auto& rq : trace) expected_tokens += static_cast<std::uint64_t>(rq.max_new_tokens);
  EXPECT_EQ(rep.generated_tokens, expected_tokens);
  for (const auto& m : rep.requests) {
    EXPECT_GE(m.admitted, m.arrival);
    EXPECT_GT(m.first_token, m.admitted);
    EXPECT_GE(m.completion, m.first_token);
    EXPECT_LE(m.completion, rep.makespan);
    EXPECT_GT(m.ttft(), Duration::zero());
    EXPECT_LE(m.ttft(), m.e2e());
  }
  EXPECT_GT(rep.tokens_per_s, 0.0);
  EXPECT_LE(rep.ttft_ms.p50, rep.ttft_ms.p95);
  EXPECT_LE(rep.ttft_ms.p95, rep.ttft_ms.p99);
}

TEST(ServerSim, ClosedLoopSaturatesBudget) {
  // With everything queued at t=0 and single-token decode slots, the
  // scheduler should keep the decode batch near the token budget.
  SchedulerConfig cfg;
  cfg.token_budget = 64;
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  RequestShape shape = small_shape();
  shape.prompt_min = shape.prompt_max = 16;
  shape.new_tokens_min = shape.new_tokens_max = 6;
  const ServeReport rep = ServerSim{engine, cfg}.run(closed_loop_trace(8, shape, 11));
  std::int64_t peak = 0;
  for (const auto& step : rep.steps) peak = std::max(peak, step.decode_tokens);
  EXPECT_GE(peak, 3);  // multiple requests genuinely share steps
  EXPECT_EQ(rep.requests.size(), 8u);
}

TEST(ServerSim, DrainOnEmptyQueueIsAHarmlessNoOp) {
  // The incremental event API allows sealing a server that never received a
  // request (e.g. a cluster replica no dispatcher ever picked): drain()
  // must succeed vacuously and report() must produce an empty, all-zero
  // report rather than tripping an assertion.
  SchedulerConfig cfg;
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  ServerSim sim{engine, cfg};
  EXPECT_TRUE(sim.drained());  // vacuously drained before any enqueue
  sim.drain();
  EXPECT_TRUE(sim.drained());
  EXPECT_EQ(sim.next_event_time(), Duration::infinite());
  const ServeReport rep = sim.report();
  EXPECT_TRUE(rep.requests.empty());
  EXPECT_TRUE(rep.steps.empty());
  EXPECT_EQ(rep.generated_tokens, 0u);
  EXPECT_DOUBLE_EQ(rep.makespan.ns(), 0.0);
  EXPECT_DOUBLE_EQ(rep.tokens_per_s, 0.0);
  EXPECT_DOUBLE_EQ(rep.ttft_ms.p99, 0.0);
}

TEST(ServerSim, AdvanceToPastTimestampIsANoOp) {
  // advance_to() must be monotone: a cluster driver that already advanced a
  // replica to t2 may later ask for t1 < t2 (e.g. interleaving many
  // replicas); the call must change nothing -- not even run an extra step.
  SchedulerConfig cfg;
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  ServerSim sim{engine, cfg};
  sim.enqueue({0, Duration::millis(2), 8, 4});
  sim.enqueue({1, Duration::millis(30), 8, 2});
  sim.advance_to(Duration::millis(20));  // runs request 0's steps
  const Duration now = sim.now();
  const std::size_t in_flight = sim.in_flight();
  const std::int64_t owed = sim.outstanding_tokens();
  EXPECT_GT(now, Duration::millis(2));

  sim.advance_to(Duration::millis(1));  // in the past: nothing may move
  sim.advance_to(Duration::zero());
  sim.advance_to(now);  // the boundary itself is also strictly-before
  EXPECT_DOUBLE_EQ(sim.now().ns(), now.ns());
  EXPECT_EQ(sim.in_flight(), in_flight);
  EXPECT_EQ(sim.outstanding_tokens(), owed);

  sim.drain();  // the remaining request still completes normally
  const ServeReport rep = sim.report();
  ASSERT_EQ(rep.requests.size(), 2u);
  EXPECT_EQ(rep.requests[0].generated, 4);
  EXPECT_EQ(rep.requests[1].generated, 2);
}

TEST(ServerSim, RejectsEmptyTrace) {
  SchedulerConfig cfg;
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  ServerSim sim{engine, cfg};
  EXPECT_THROW((void)sim.run({}), Error);
}

// --- Resume / prefix-cache / size-aware admission -----------------------------

TEST(Scheduler, ResumedRequestContinuesFromCheckpoint) {
  SchedulerConfig cfg;
  ContinuousBatchScheduler sched{cfg};
  Request rq;
  rq.id = 7;
  rq.prompt_len = 40;
  rq.max_new_tokens = 6;
  rq.attempt = 1;
  rq.resume.prefilled = 40;
  rq.resume.decoded = 2;
  rq.resume.first_token = Duration::millis(3);
  sched.push(rq);
  sched.seal();
  EXPECT_EQ(sched.outstanding_tokens(), 4);  // only the remaining decode is owed
  sched.release_arrivals(Duration::zero());
  const auto newly = sched.admit();
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0]->saved_tokens, 40);  // default discount = the resumed prefix
  EXPECT_EQ(newly[0]->generated, 2);
  EXPECT_EQ(sched.slots()[0].step, 2);  // decode depth carries over

  StepOutcome out = sched.complete_step(Duration::millis(10));
  ASSERT_EQ(out.advanced.size(), 1u);
  EXPECT_EQ(out.advanced[0], 7u);
  EXPECT_TRUE(out.finished.empty());
  EXPECT_EQ(sched.states()[0].generated, 3);
  // The original attempt's first token keeps its instant across resumes.
  EXPECT_DOUBLE_EQ(sched.states()[0].first_token.ms(), 3.0);

  sched.complete_step(Duration::millis(11));
  sched.complete_step(Duration::millis(12));
  out = sched.complete_step(Duration::millis(13));  // 6th token overall
  ASSERT_EQ(out.finished.size(), 1u);
  EXPECT_EQ(out.finished[0], 7u);
  EXPECT_TRUE(sched.drained());
  EXPECT_EQ(sched.outstanding_tokens(), 0);
  EXPECT_EQ(sched.states()[0].generated, 6);
  EXPECT_DOUBLE_EQ(sched.states()[0].first_token.ms(), 3.0);
  EXPECT_DOUBLE_EQ(sched.states()[0].completion.ms(), 13.0);
}

TEST(Scheduler, PrefillDiscountShrinksAdmissionCharge) {
  SchedulerConfig cfg;
  cfg.token_budget = 50;
  ContinuousBatchScheduler sched{cfg};
  // Two 40-token prompts: undiscounted, only one fits (40+40+2 > 50); with
  // half the prompt cached, both do (20+20+2 <= 50).
  sched.set_prefill_discount([](const Request& rq) { return rq.prompt_len / 2; });
  sched.submit({{0, Duration::zero(), 40, 4}, {1, Duration::zero(), 40, 4}});
  sched.release_arrivals(Duration::zero());
  const auto newly = sched.admit();
  ASSERT_EQ(newly.size(), 2u);
  EXPECT_EQ(newly[0]->saved_tokens, 20);  // frozen for the server's pricing
  EXPECT_EQ(newly[1]->saved_tokens, 20);
}

TEST(Scheduler, SizeAwareAdmissionPrefersFewestRemainingTokens) {
  SchedulerConfig cfg;
  cfg.token_budget = 45;
  const auto admitted_first = [&](bool size_aware) {
    cfg.size_aware_admission = size_aware;
    ContinuousBatchScheduler sched{cfg};
    // A 40-token giant arrives ahead of an 8-token short request.
    sched.submit({{0, Duration::zero(), 40, 4}, {1, Duration::zero(), 8, 2}});
    sched.release_arrivals(Duration::zero());
    const auto newly = sched.admit();
    EXPECT_EQ(newly.size(), 1u);  // either way only one fits the 45-token budget
    return newly.empty() ? std::uint64_t{99} : newly[0]->request.id;
  };
  EXPECT_EQ(admitted_first(false), 0u);  // FIFO: the giant, short waits behind it
  EXPECT_EQ(admitted_first(true), 1u);   // size-aware: the short slips past
}

TEST(Scheduler, SizeAwareBypassLimitGuardsStarvation) {
  SchedulerConfig cfg;
  cfg.token_budget = 32;
  cfg.size_aware_admission = true;
  cfg.admission_bypass_limit = 2;
  ContinuousBatchScheduler sched{cfg};
  std::vector<Request> trace;
  trace.push_back({0, Duration::zero(), 30, 2});  // the giant
  for (std::uint64_t i = 1; i <= 6; ++i) {
    trace.push_back({i, Duration::zero(), 8, 2});
  }
  for (const Request& rq : trace) sched.push(rq);
  sched.release_arrivals(Duration::zero());

  // Round 1: three shorts fit (8*3 + 3 slots <= 32); the giant is bypassed.
  auto newly = sched.admit();
  ASSERT_EQ(newly.size(), 3u);
  for (const RequestState* rs : newly) EXPECT_NE(rs->request.id, 0u);
  sched.complete_step(Duration::millis(1));

  // Round 2: the remaining shorts leapfrog again (bypass count hits 2).
  newly = sched.admit();
  ASSERT_EQ(newly.size(), 3u);
  for (const RequestState* rs : newly) EXPECT_NE(rs->request.id, 0u);
  sched.complete_step(Duration::millis(2));  // shorts 1-3 finish (2 tokens)

  // Round 3: the giant is past its bypass limit. It cannot fit beside the
  // three active shorts, and nothing may leapfrog it any more -- not even a
  // fresh short arrival.
  sched.push({7, Duration::millis(2), 8, 2});
  sched.release_arrivals(Duration::millis(2));
  EXPECT_TRUE(sched.admit().empty());
  sched.complete_step(Duration::millis(3));  // shorts 4-6 finish; server empties

  // Round 4: seniority wins -- the giant admits before the waiting short.
  newly = sched.admit();
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0]->request.id, 0u);
}

TEST(Arrivals, SharedPrefixGroupsAreOptInAndDeterministic) {
  const RequestShape plain = small_shape();
  const auto base = poisson_trace(20, 50.0, plain, 9);
  RequestShape pref = plain;
  pref.prefix_groups = 3;
  pref.shared_fraction = 1.0;
  pref.shared_prefix_len = 8;
  const auto with = poisson_trace(20, 50.0, pref, 9);
  ASSERT_EQ(with.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    // Arrival and shape streams are untouched by the (later) prefix draws.
    EXPECT_DOUBLE_EQ(with[i].arrival.ns(), base[i].arrival.ns());
    EXPECT_EQ(with[i].prompt_len, base[i].prompt_len);
    EXPECT_EQ(with[i].max_new_tokens, base[i].max_new_tokens);
    EXPECT_EQ(base[i].prefix_id, 0u);
    EXPECT_GE(with[i].prefix_id, 1u);
    EXPECT_LE(with[i].prefix_id, 3u);
    EXPECT_EQ(with[i].shared_prefix_len, 8);
  }
  // Deterministic given the seed, including the prefix assignment.
  const auto again = poisson_trace(20, 50.0, pref, 9);
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(again[i].prefix_id, with[i].prefix_id);
  }
  RequestShape bad = pref;
  bad.shared_prefix_len = plain.prompt_min + 1;  // not every member carries it
  EXPECT_THROW(bad.validate(), Error);
}

TEST(Arrivals, ZipfPrefixSkewIsOptInAndFavorsGroupOne) {
  RequestShape uniform = small_shape();
  uniform.prefix_groups = 4;
  uniform.shared_fraction = 1.0;
  uniform.shared_prefix_len = 8;
  // prefix_zipf_s = 0 (the default) draws from the historical uniform
  // stream: bit-identical group assignments.
  RequestShape zero_skew = uniform;
  zero_skew.prefix_zipf_s = 0.0;
  const auto base = poisson_trace(64, 50.0, uniform, 9);
  const auto same = poisson_trace(64, 50.0, zero_skew, 9);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(same[i].prefix_id, base[i].prefix_id);
  }
  // Skewed popularity: group 1 dominates, arrivals/shapes untouched.
  RequestShape skewed = uniform;
  skewed.prefix_zipf_s = 1.5;
  const auto hot = poisson_trace(64, 50.0, skewed, 9);
  std::size_t g1 = 0, g4 = 0;
  for (std::size_t i = 0; i < hot.size(); ++i) {
    EXPECT_DOUBLE_EQ(hot[i].arrival.ns(), base[i].arrival.ns());
    EXPECT_EQ(hot[i].prompt_len, base[i].prompt_len);
    ASSERT_GE(hot[i].prefix_id, 1u);
    ASSERT_LE(hot[i].prefix_id, 4u);
    g1 += hot[i].prefix_id == 1;
    g4 += hot[i].prefix_id == 4;
  }
  EXPECT_GT(g1, g4);  // 1/1^1.5 vs 1/4^1.5: an 8x popularity gap
  RequestShape bad = uniform;
  bad.prefix_zipf_s = -0.5;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(ServerSim, DisabledCacheConfigIsBitIdenticalToDefault) {
  // The acceptance pin: constructing a server with an explicit (disabled)
  // PrefixCacheConfig -- on a trace that even carries shared-prefix ids --
  // must reproduce the default server bit for bit.
  RequestShape shape = small_shape();
  shape.prefix_groups = 2;
  shape.shared_fraction = 0.75;
  shape.shared_prefix_len = 8;
  const auto trace = poisson_trace(10, 60.0, shape, 11);
  SchedulerConfig cfg;
  auto ref_engine = make_engine(core::StrategyKind::kMondeLoadBalanced, 21);
  const ServeReport ref = ServerSim{ref_engine, cfg}.run(trace);
  PrefixCacheConfig off;  // disabled; knob values must not matter
  off.capacity_tokens = 1;
  auto engine = make_engine(core::StrategyKind::kMondeLoadBalanced, 21);
  const ServeReport rep =
      ServerSim{engine, cfg, Duration::zero(), {}, off}.run(trace);
  ASSERT_EQ(rep.requests.size(), ref.requests.size());
  for (std::size_t i = 0; i < rep.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(rep.requests[i].first_token.ns(), ref.requests[i].first_token.ns());
    EXPECT_DOUBLE_EQ(rep.requests[i].completion.ns(), ref.requests[i].completion.ns());
    EXPECT_EQ(rep.requests[i].saved_tokens, 0);
  }
  ASSERT_EQ(rep.steps.size(), ref.steps.size());
  for (std::size_t i = 0; i < rep.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(rep.steps[i].end.ns(), ref.steps[i].end.ns());
    EXPECT_EQ(rep.steps[i].cached_tokens, 0);
  }
  EXPECT_DOUBLE_EQ(rep.makespan.ns(), ref.makespan.ns());
  EXPECT_EQ(rep.cache.lookups, 0u);
}

TEST(ServerSim, SharedPrefixCacheSkipsPrefillAndShrinksMakespan) {
  RequestShape shape = small_shape();
  shape.prefix_groups = 2;
  shape.shared_fraction = 1.0;
  shape.shared_prefix_len = 12;
  // Closed-loop: the server is never idle, so the makespan IS the busy time
  // and skipped prefill work shows up in it directly (an open-loop trace
  // would let arrival-gap idling blur the comparison).
  const auto trace = closed_loop_trace(10, shape, 11);
  SchedulerConfig cfg;
  auto ref_engine = make_engine(core::StrategyKind::kMondeLoadBalanced, 21);
  const ServeReport off = ServerSim{ref_engine, cfg}.run(trace);
  PrefixCacheConfig cache;
  cache.enabled = true;
  auto engine = make_engine(core::StrategyKind::kMondeLoadBalanced, 21);
  const ServeReport on =
      ServerSim{engine, cfg, Duration::zero(), {}, cache}.run(trace);
  EXPECT_GT(on.cache.hits, 0u);
  EXPECT_GT(on.cache.saved_tokens, 0);
  EXPECT_GT(on.cache.resident_peak, 0);
  std::int64_t cached = 0, prefilled = 0;
  for (const StepRecord& s : on.steps) {
    cached += s.cached_tokens;
    prefilled += s.prefill_tokens;
  }
  EXPECT_EQ(cached, on.cache.saved_tokens);
  std::int64_t prompt_total = 0;
  for (const Request& rq : trace) prompt_total += rq.prompt_len;
  EXPECT_EQ(prefilled + cached, prompt_total);  // every prompt token accounted
  // Skipped prefill work is real simulated time saved.
  EXPECT_LT(on.makespan, off.makespan);
  ASSERT_EQ(on.requests.size(), trace.size());
  for (const RequestMetrics& m : on.requests) EXPECT_GT(m.generated, 0);
}

TEST(ServerSim, EvacuateHandsBackUnfinishedWithCheckpoints) {
  SchedulerConfig cfg;
  cfg.token_budget = 64;
  RequestShape shape = small_shape();
  shape.prompt_min = shape.prompt_max = 16;
  shape.new_tokens_min = shape.new_tokens_max = 6;
  // Three 16-token prompts co-admit in step 1 (48 + 3 slots <= 64).
  const auto trace = closed_loop_trace(3, shape, 11);
  // A fault-free twin maps the step boundaries.
  auto twin_engine = make_engine(core::StrategyKind::kMondeAmove);
  const ServeReport twin = ServerSim{twin_engine, cfg}.run(trace);
  ASSERT_GE(twin.steps.size(), 3u);

  PrefixCacheConfig cache;
  cache.enabled = true;
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  ServerSim sim{engine, cfg, Duration::zero(), {}, cache};
  for (const Request& rq : trace) sim.enqueue(rq);
  // Advance into step 2: step 1's completion is applied, step 2 is priced
  // and pending. Evacuation stops at the step-2 boundary, so the migrated
  // checkpoint carries two applied decode steps.
  sim.advance_to(twin.steps[1].start + (twin.steps[1].end - twin.steps[1].start) * 0.5);
  const std::vector<Request> moved = sim.evacuate();
  ASSERT_EQ(moved.size(), trace.size());  // 6-token budgets: nothing finished yet
  for (const Request& rq : moved) {
    EXPECT_EQ(rq.resume.prefilled, rq.prompt_len);
    EXPECT_EQ(rq.resume.decoded, 2);
    EXPECT_DOUBLE_EQ(rq.resume.first_token.ns(), twin.steps[0].end.ns());
    EXPECT_NO_THROW(rq.validate());
  }
  EXPECT_THROW(sim.enqueue({99, sim.now(), 8, 2}), Error);
  EXPECT_THROW((void)sim.evacuate(), Error);  // at most once
  sim.drain();  // report covers (zero) completed requests
  EXPECT_TRUE(sim.report().requests.empty());
}

TEST(ServerSim, EvacuateDiscardsStepThatOutlivesScheduledFailStop) {
  // Retire-then-die race: the autoscaler evacuates a replica whose
  // in-flight step crosses its scheduled fail-stop. The node never lives
  // to finish that step, so migration must not rescue its effects -- the
  // checkpoint stops at the last step completed BEFORE the death.
  SchedulerConfig cfg;
  cfg.token_budget = 64;
  RequestShape shape = small_shape();
  shape.prompt_min = shape.prompt_max = 16;
  shape.new_tokens_min = shape.new_tokens_max = 6;
  const auto trace = closed_loop_trace(3, shape, 11);
  auto twin_engine = make_engine(core::StrategyKind::kMondeAmove);
  const ServeReport twin = ServerSim{twin_engine, cfg}.run(trace);
  ASSERT_GE(twin.steps.size(), 3u);

  FaultSpec fault;
  const Duration span = twin.steps[1].end - twin.steps[1].start;
  fault.fail_at = twin.steps[1].start + span * 0.5;  // death inside step 2
  auto engine = make_engine(core::StrategyKind::kMondeAmove);
  ServerSim sim{engine, cfg, Duration::zero(), fault};
  for (const Request& rq : trace) sim.enqueue(rq);
  // Advance to a point inside step 2 but BEFORE the death: step 2 is
  // priced and pending, the server is still alive, and the retirement
  // tick fires here.
  sim.advance_to(twin.steps[1].start + span * 0.25);
  ASSERT_FALSE(sim.failed());
  const std::vector<Request> moved = sim.evacuate();
  ASSERT_EQ(moved.size(), trace.size());
  for (const Request& rq : moved) {
    EXPECT_EQ(rq.resume.decoded, 1);  // step 1 committed; step 2 died with the node
    EXPECT_EQ(rq.resume.prefilled, rq.prompt_len);
  }
}

TEST(ServerSim, HarvestMidPrefillVsMidDecodeCheckpoints) {
  // The checkpoint is the last COMPLETED step: dying inside the admission
  // step loses the prefill (mid-prefill: resume stays zero), dying after n
  // applied steps checkpoints the prompt + n tokens (mid-decode).
  SchedulerConfig cfg;
  cfg.token_budget = 64;
  RequestShape shape = small_shape();
  shape.prompt_min = shape.prompt_max = 24;
  shape.new_tokens_min = shape.new_tokens_max = 6;
  const auto trace = closed_loop_trace(2, shape, 3);
  auto twin_engine = make_engine(core::StrategyKind::kMondeAmove);
  const ServeReport twin = ServerSim{twin_engine, cfg}.run(trace);
  ASSERT_GE(twin.steps.size(), 3u);

  const auto strand_at = [&](Duration fail_at) {
    FaultSpec fault;
    fault.fail_at = fail_at;
    auto engine = make_engine(core::StrategyKind::kMondeAmove);
    ServerSim sim{engine, cfg, Duration::zero(), fault};
    for (const Request& rq : trace) sim.enqueue(rq);
    sim.advance_to(Duration::infinite());
    EXPECT_TRUE(sim.failed());
    EXPECT_THROW((void)sim.evacuate(), Error);  // a dead server cannot migrate
    return sim.harvest_stranded();
  };

  // Mid-prefill: death inside step 1, before its completion lands.
  const auto lost = strand_at(twin.steps[0].start + (twin.steps[0].end - twin.steps[0].start) * 0.5);
  ASSERT_EQ(lost.size(), trace.size());
  for (const Request& rq : lost) {
    EXPECT_EQ(rq.resume.prefilled, 0);
    EXPECT_EQ(rq.resume.decoded, 0);
  }

  // Mid-decode: death inside step 3; steps 1-2 committed two tokens each.
  const auto kept = strand_at(twin.steps[2].start + (twin.steps[2].end - twin.steps[2].start) * 0.5);
  ASSERT_EQ(kept.size(), trace.size());
  for (const Request& rq : kept) {
    EXPECT_EQ(rq.resume.prefilled, rq.prompt_len);
    EXPECT_EQ(rq.resume.decoded, 2);
    EXPECT_DOUBLE_EQ(rq.resume.first_token.ns(), twin.steps[0].end.ns());
  }
}

}  // namespace
}  // namespace monde::serve
