// Tests for the beyond-paper extensions: the GPU expert cache and the
// energy model.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/energy.hpp"
#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/expert_cache.hpp"
#include "core/load_balancer.hpp"

namespace monde::core {
namespace {

// --- ExpertCache ---------------------------------------------------------------

TEST(ExpertCache, LruEvictionOrder) {
  ExpertCache cache{2};
  cache.insert({0, 1});
  cache.insert({0, 2});
  EXPECT_TRUE(cache.contains({0, 1}));
  EXPECT_TRUE(cache.access({0, 1}));  // refresh: {0,1} is now MRU
  cache.insert({0, 3});               // evicts LRU = {0,2}
  EXPECT_TRUE(cache.contains({0, 1}));
  EXPECT_FALSE(cache.contains({0, 2}));
  EXPECT_TRUE(cache.contains({0, 3}));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ExpertCache, HitMissAccounting) {
  ExpertCache cache{4};
  EXPECT_FALSE(cache.access({1, 1}));
  cache.insert({1, 1});
  EXPECT_TRUE(cache.access({1, 1}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(ExpertCache, LayerIdsDoNotAlias) {
  ExpertCache cache{4};
  cache.insert({0, 7});
  EXPECT_FALSE(cache.access({1, 7}));  // same expert index, different layer
  EXPECT_TRUE(cache.access({0, 7}));
}

TEST(ExpertCache, ZeroCapacityNeverStores) {
  ExpertCache cache{0};
  cache.insert({0, 1});
  EXPECT_FALSE(cache.contains({0, 1}));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ExpertCache, ReinsertRefreshesWithoutGrowth) {
  ExpertCache cache{2};
  cache.insert({0, 1});
  cache.insert({0, 1});
  EXPECT_EQ(cache.size(), 1u);
  cache.insert({0, 2});
  cache.insert({0, 1});  // refresh, no eviction
  EXPECT_TRUE(cache.contains({0, 2}));
}

TEST(ExpertCache, ClearEmpties) {
  ExpertCache cache{4};
  cache.insert({0, 1});
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains({0, 1}));
}

// --- Cache wired into PMove strategies -------------------------------------------

moe::MoeModelConfig cache_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;
  m.vocab_size = 4096;
  return m;
}

TEST(CachedPmove, RepeatedLayerSkipsTransfers) {
  SystemConfig sys = SystemConfig::dac24();
  sys.gpu_expert_cache_bytes = Bytes::gib(8.0);  // plenty for 16 tiny experts
  InferenceEngine eng{sys, cache_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kGpuPmove, 42};
  const RunReport first = eng.run_decoder(4, 2);
  const RunReport second = eng.run_decoder(4, 2);
  std::uint64_t pmove_first = 0, pmove_second = 0;
  std::int64_t hits_second = 0;
  for (const auto& l : first.layers) pmove_first += l.pmove_bytes.count();
  for (const auto& l : second.layers) {
    pmove_second += l.pmove_bytes.count();
    hits_second += l.cache_hits;
  }
  EXPECT_LT(pmove_second, pmove_first);  // warm cache skips transfers
  EXPECT_GT(hits_second, 0);
  const ExpertCache* cache = eng.strategy().expert_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->hit_rate(), 0.2);
}

TEST(CachedPmove, CacheImprovesDecoderThroughput) {
  SystemConfig off = SystemConfig::dac24();
  SystemConfig on = SystemConfig::dac24();
  on.gpu_expert_cache_bytes = Bytes::gib(8.0);
  const auto model = cache_model();
  auto sim = std::make_shared<ndp::NdpCoreSim>(off.ndp, off.monde_mem);
  InferenceEngine base{off, model, moe::SkewProfile::switch_like(),
                       StrategyKind::kGpuPmove, 42, sim};
  InferenceEngine cached{on, model, moe::SkewProfile::switch_like(),
                         StrategyKind::kGpuPmove, 42, sim};
  const double t_base = base.run_decoder(4, 8).total.sec();
  const double t_cached = cached.run_decoder(4, 8).total.sec();
  EXPECT_LT(t_cached, t_base);
}

TEST(CachedPmove, DisabledByDefault) {
  InferenceEngine eng{SystemConfig::dac24(), cache_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kGpuPmove, 42};
  EXPECT_EQ(eng.strategy().expert_cache(), nullptr);
}

TEST(CachedPmove, EvictionUnderTinyCache) {
  // Cache of one expert: hot expert may stick, everything else misses.
  SystemConfig sys = SystemConfig::dac24();
  sys.gpu_expert_cache_bytes = cache_model().expert_bytes();
  InferenceEngine eng{sys, cache_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kGpuPmove, 42};
  (void)eng.run_encoder(1, 128);
  const ExpertCache* cache = eng.strategy().expert_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_LE(cache->size(), 1u);
}

// --- Energy model -----------------------------------------------------------------

TEST(Energy, DramEnergyComponents) {
  dram::Stats s;
  s.activates = 1000;
  s.reads_completed = 10000;
  s.writes_completed = 500;
  s.refreshes = 10;
  const analysis::DramEnergyCoefficients c;
  const double e = analysis::dram_energy_joules(s, Duration::millis(1), Bytes::gib(512), c);
  const double commands = (1000 * c.pj_per_activate + 10000 * c.pj_per_read +
                           500 * c.pj_per_write + 10 * c.pj_per_refresh) *
                          1e-12;
  const double background = c.background_mw_per_gb * 1e-3 * Bytes::gib(512).as_gb() * 1e-3;
  EXPECT_NEAR(e, commands + background, 1e-9);
}

TEST(Energy, MoreTrafficMoreEnergy) {
  dram::Stats small, big;
  small.reads_completed = 100;
  big.reads_completed = 100000;
  EXPECT_LT(analysis::dram_energy_joules(small, Duration::micros(10), Bytes::gib(512)),
            analysis::dram_energy_joules(big, Duration::micros(10), Bytes::gib(512)));
}

TEST(Energy, PmoveCostsMoreLinkEnergyThanAmove) {
  // The energy counterpart of Equations 1-2: PMove ships ~GBs of weights
  // per layer; AMove ships MBs of activations.
  const SystemConfig sys = SystemConfig::dac24();
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();
  auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
  const analysis::EnergyModel energy;

  auto layer_energy = [&](StrategyKind kind) {
    InferenceEngine eng{sys, model, prof, kind, 42, sim};
    sim::StreamSchedule sched;
    const HwStreams hw = HwStreams::create(sched, sys);
    moe::WorkloadGenerator gen{model, prof, 42};
    const auto work = gen.encoder_pass(4, 512).moe_layers[0];
    const auto res = eng.strategy().run_layer(work, sched, hw, Duration::zero());
    return energy.price_layer(res, sched.timeline(), hw, sys, model);
  };

  const auto pm = layer_energy(StrategyKind::kGpuPmove);
  const auto lb = layer_energy(StrategyKind::kMondeLoadBalanced);
  EXPECT_GT(pm.link_j, 10.0 * lb.link_j / 3.0);  // PMove link energy dominates
  EXPECT_GT(lb.ndp_j, 0.0);
  EXPECT_EQ(pm.ndp_j, 0.0);
  EXPECT_LT(lb.total_j(), pm.total_j());  // near-data wins on energy too
}

TEST(Energy, GpuBusyTimeDrivesGpuEnergy) {
  const analysis::EnergyModel energy;
  const SystemConfig sys = SystemConfig::dac24();
  const auto model = moe::MoeModelConfig::switch_large_128();
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, sys);
  sched.place(hw.gpu, Duration::zero(), Duration::millis(10), "gemm", "gemm");
  MoeLayerResult res;
  const auto e = energy.price_layer(res, sched.timeline(), hw, sys, model);
  EXPECT_NEAR(e.gpu_j, energy.coefficients().gpu_busy_watts * 0.010, 1e-9);
}

}  // namespace
}  // namespace monde::core
