// Cross-module integration tests: the qualitative trends of the paper's
// evaluation figures must hold end-to-end.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "core/load_balancer.hpp"

namespace monde::core {
namespace {

/// Reduced-depth variant keeps integration tests fast while preserving the
/// per-layer physics (the trends are per-MoE-layer properties).
moe::MoeModelConfig shallow(moe::MoeModelConfig m) {
  m.encoder_blocks = 8;
  m.decoder_blocks = 8;
  return m;
}

/// All Trends tests drive the same DAC'24 MoNDE device, so they share one
/// NdpCoreSim: expert shapes already simulated by an earlier test resolve
/// from the memo instead of re-running the cycle-level simulation cold.
class Trends : public ::testing::Test {
 protected:
  static std::shared_ptr<ndp::NdpCoreSim> shared_sim() {
    static const std::shared_ptr<ndp::NdpCoreSim> sim = [] {
      const SystemConfig sys = SystemConfig::dac24();
      return std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
    }();
    return sim;
  }
};

double encoder_speedup_lb_over_pm(const moe::MoeModelConfig& model,
                                  const moe::SkewProfile& prof, std::int64_t batch,
                                  std::shared_ptr<ndp::NdpCoreSim> sim) {
  const SystemConfig sys = SystemConfig::dac24();
  InferenceEngine pm{sys, model, prof, StrategyKind::kGpuPmove, 42, sim};
  InferenceEngine lb{sys, model, prof, StrategyKind::kMondeLoadBalanced, 42, sim};
  const double t_pm = pm.run_encoder(batch, 512).total.sec();
  const double t_lb = lb.run_encoder(batch, 512).total.sec();
  return t_pm / t_lb;
}

TEST_F(Trends, Figure6MondeWinsAndOrderingHolds) {
  // GPU+PM < MD+AM < MD+LB <= Ideal throughput for the encoder.
  const auto model = shallow(moe::MoeModelConfig::nllb_moe_128());
  const SystemConfig sys = SystemConfig::dac24();
  auto sim = shared_sim();
  double tput[4];
  const StrategyKind kinds[] = {StrategyKind::kGpuPmove, StrategyKind::kMondeAmove,
                                StrategyKind::kMondeLoadBalanced, StrategyKind::kIdealGpu};
  for (int i = 0; i < 4; ++i) {
    InferenceEngine eng{sys, model, moe::SkewProfile::nllb_like(), kinds[i], 42, sim};
    tput[i] = eng.run_encoder(4, 512).throughput_tokens_per_s();
  }
  EXPECT_LT(tput[0], tput[1]);  // PM < AM
  EXPECT_LT(tput[1], tput[2]);  // AM < LB
  EXPECT_LE(tput[2], tput[3] * 1.02);  // LB <= Ideal
  // Substantial speedup (paper: 6.7x for the NLLB encoder).
  EXPECT_GT(tput[2] / tput[0], 3.0);
}

TEST_F(Trends, Figure6DecoderGainsSmallerThanEncoder) {
  const auto model = shallow(moe::MoeModelConfig::nllb_moe_128());
  const SystemConfig sys = SystemConfig::dac24();
  auto sim = shared_sim();
  InferenceEngine pm{sys, model, moe::SkewProfile::nllb_like(), StrategyKind::kGpuPmove, 42,
                     sim};
  InferenceEngine lb{sys, model, moe::SkewProfile::nllb_like(),
                     StrategyKind::kMondeLoadBalanced, 42, sim};
  const double enc =
      pm.run_encoder(4, 512).total.sec() / lb.run_encoder(4, 512).total.sec();
  const double dec =
      pm.run_decoder(4, 8).total.sec() / lb.run_decoder(4, 8).total.sec();
  EXPECT_GT(enc, dec);
  EXPECT_GT(dec, 1.0);  // MoNDE still wins on the decoder
}

TEST_F(Trends, Figure7aSpeedupGrowsWithModelScale) {
  // MD+LB speedup over GPU+PM rises from d768-E64 to d768-E128 to d1024-E128.
  const moe::SkewProfile prof = moe::SkewProfile::switch_like();
  const auto v1 = shallow(moe::MoeModelConfig::switch_variant(768, 64));
  const auto v2 = shallow(moe::MoeModelConfig::switch_variant(768, 128));
  const auto v3 = shallow(moe::MoeModelConfig::switch_variant(1024, 128));
  const SystemConfig sys = SystemConfig::dac24();
  auto sim = shared_sim();
  const double s1 = encoder_speedup_lb_over_pm(v1, prof, 1, sim);
  const double s2 = encoder_speedup_lb_over_pm(v2, prof, 1, sim);
  const double s3 = encoder_speedup_lb_over_pm(v3, prof, 1, sim);
  EXPECT_GT(s1, 1.0);
  EXPECT_GT(s2, s1 * 0.95);  // more experts -> more offloadable cold work
  EXPECT_GT(s3, s2 * 0.95);  // larger dmodel -> heavier PMove penalty
  EXPECT_GT(s3, s1);         // end-to-end trend must strictly hold
}

TEST_F(Trends, Figure7bBandwidthScalingHelpsAmove) {
  // 0.5x / 1x / 2x MoNDE bandwidth with rate-matched compute: MD+AM MoE
  // latency must fall monotonically.
  const auto model = shallow(moe::MoeModelConfig::nllb_moe_128());
  double moe_time[3];
  const double scales[] = {0.5, 1.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    const SystemConfig sys = SystemConfig::dac24().with_monde_bandwidth_scale(scales[i]);
    InferenceEngine eng{sys, model, moe::SkewProfile::nllb_like(),
                        StrategyKind::kMondeAmove, 42};
    moe_time[i] = eng.run_encoder(1, 512).moe.sec();
  }
  EXPECT_GT(moe_time[0], moe_time[1]);
  EXPECT_GT(moe_time[1], moe_time[2]);
}

TEST_F(Trends, Figure8CpuSlowerThanNdp) {
  // CPU+AM pays lower memory bandwidth and weaker GEMM throughput.
  const auto model = shallow(moe::MoeModelConfig::nllb_moe_128());
  const SystemConfig sys = SystemConfig::dac24();
  auto sim = shared_sim();
  InferenceEngine cpu{sys, model, moe::SkewProfile::nllb_like(), StrategyKind::kCpuAmove,
                      42, sim};
  InferenceEngine md{sys, model, moe::SkewProfile::nllb_like(), StrategyKind::kMondeAmove,
                     42, sim};
  const double cpu_moe = cpu.run_encoder(4, 512).moe.sec();
  const double md_moe = md.run_encoder(4, 512).moe.sec();
  EXPECT_GT(cpu_moe / md_moe, 2.0);  // paper: 9.1x for the encoder
}

TEST_F(Trends, Figure9MultiMondeScalesEncoder) {
  const auto model = shallow(moe::MoeModelConfig::nllb_moe_128());
  double moe_time[3];
  const int devices[] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    SystemConfig sys = SystemConfig::dac24();
    sys.num_monde_devices = devices[i];
    InferenceEngine eng{sys, model, moe::SkewProfile::nllb_like(),
                        StrategyKind::kMondeAmove, 42};
    moe_time[i] = eng.run_encoder(4, 512).moe.sec();
  }
  EXPECT_LE(moe_time[1], moe_time[0] * 1.001);
  EXPECT_LE(moe_time[2], moe_time[1] * 1.001);
  // Some real scaling from 1 -> 4 devices.
  EXPECT_GT(moe_time[0] / moe_time[2], 1.15);
}

TEST_F(Trends, Figure10TwoGpuEncoderWinsDecoderComparable) {
  const auto model = shallow(moe::MoeModelConfig::nllb_moe_128());
  SystemConfig sys2 = SystemConfig::dac24();
  sys2.num_gpus = 2;
  const SystemConfig sys1 = SystemConfig::dac24();
  auto sim = shared_sim();
  InferenceEngine lb{sys1, model, moe::SkewProfile::nllb_like(),
                     StrategyKind::kMondeLoadBalanced, 42, sim};
  InferenceEngine two{sys2, model, moe::SkewProfile::nllb_like(), StrategyKind::kMultiGpu,
                      42, sim};
  // Encoder: resident-weight multi-GPU beats MD+LB.
  EXPECT_GT(two.run_encoder(4, 512).throughput_tokens_per_s(),
            lb.run_encoder(4, 512).throughput_tokens_per_s());
  // Decoder: MoNDE is comparable (within 2x either way).
  const double r = two.run_decoder(1, 8).throughput_tokens_per_s() /
                   lb.run_decoder(1, 8).throughput_tokens_per_s();
  EXPECT_GT(r, 0.5);
  EXPECT_LT(r, 2.0);
}

TEST_F(Trends, LoadBalancerTracksBandwidthInEquation6) {
  // Higher MoNDE bandwidth -> lower, more conservative H (paper Section 4.2).
  const auto model = shallow(moe::MoeModelConfig::nllb_moe_128());
  moe::WorkloadGenerator gen{model, moe::SkewProfile::nllb_like(), 42};
  const auto work = gen.encoder_pass(4, 512).moe_layers[0];

  auto h_at_scale = [&](double scale) {
    SystemConfig sys = SystemConfig::dac24().with_monde_bandwidth_scale(scale);
    InferenceEngine eng{sys, model, moe::SkewProfile::nllb_like(),
                        StrategyKind::kMondeLoadBalanced, 42};
    auto& lb = dynamic_cast<MondeLoadBalanced&>(eng.strategy());
    return lb.h_from_equation6(work, 1.0);
  };
  EXPECT_GE(h_at_scale(0.5), h_at_scale(1.0));
  EXPECT_GE(h_at_scale(1.0), h_at_scale(2.0));
}

// Property sweep: every strategy produces a valid timeline and conserves
// experts for both models and multiple batch sizes end-to-end.
struct EngineCase {
  StrategyKind kind;
  std::int64_t batch;
};

class EngineValidityTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineValidityTest, TimelineValidAndTokensConserved) {
  const auto [kind, batch] = GetParam();
  SystemConfig sys = SystemConfig::dac24();
  if (kind == StrategyKind::kMultiGpu) sys.num_gpus = 2;
  auto model = shallow(moe::MoeModelConfig::switch_variant(512, 32));
  model.vocab_size = 8192;
  InferenceEngine eng{sys, model, moe::SkewProfile::switch_like(), kind, 42};
  const RunReport enc = eng.run_encoder(batch, 256);
  EXPECT_TRUE(enc.timeline.validate().empty()) << enc.timeline.validate();
  for (const auto& layer : enc.layers) {
    EXPECT_GT(layer.experts_gpu + layer.experts_ndp + layer.experts_cpu, 0);
  }
  const RunReport dec = eng.run_decoder(batch, 4, 256);
  EXPECT_TRUE(dec.timeline.validate().empty()) << dec.timeline.validate();
  EXPECT_GT(dec.throughput_tokens_per_s(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EngineValidityTest,
    ::testing::Values(EngineCase{StrategyKind::kIdealGpu, 1},
                      EngineCase{StrategyKind::kGpuPmove, 1},
                      EngineCase{StrategyKind::kMondeAmove, 1},
                      EngineCase{StrategyKind::kMondeLoadBalanced, 1},
                      EngineCase{StrategyKind::kCpuAmove, 1},
                      EngineCase{StrategyKind::kMultiGpu, 1},
                      EngineCase{StrategyKind::kIdealGpu, 4},
                      EngineCase{StrategyKind::kGpuPmove, 4},
                      EngineCase{StrategyKind::kMondeAmove, 4},
                      EngineCase{StrategyKind::kMondeLoadBalanced, 4},
                      EngineCase{StrategyKind::kCpuAmove, 4},
                      EngineCase{StrategyKind::kMultiGpu, 4}));

}  // namespace
}  // namespace monde::core
