// Shared cluster-scenario fixtures for the serving test suites.
//
// test_cluster.cpp, test_calendar_diff.cpp, test_expert_serving.cpp,
// test_disagg.cpp, and test_random_diff.cpp all build the same small fleets
// over the same tiny models; this header is the single definition of those
// builders plus the bit-identity comparator the differential suites pin
// against. Every helper is inline -- each test source is its own binary.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace monde::serve::fixtures {

/// A small MoE model that keeps cycle-level simulations fast.
inline moe::MoeModelConfig tiny_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;
  m.vocab_size = 8192;
  m.top_k = 2;
  m.name = "tiny-test-model";
  return m;
}

/// The expert-serving suites' historical variant: same topology (2 decoder
/// MoE layers x 16 experts) but the switch_variant defaults for vocab/top_k.
/// Kept distinct so the expert tests' pinned numbers do not move.
inline moe::MoeModelConfig tiny_expert_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;
  m.name = "tiny-expert-model";
  return m;
}

inline RequestShape small_shape() {
  RequestShape s;
  s.prompt_min = 16;
  s.prompt_max = 48;
  s.new_tokens_min = 2;
  s.new_tokens_max = 8;
  return s;
}

/// Every field of two ClusterReports, compared exactly. Duration carries an
/// exact (defaulted) comparison, so == here really is bit-identity.
inline void expect_reports_identical(const ClusterReport& a, const ClusterReport& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.autoscaler, b.autoscaler);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const RequestMetrics& x = a.requests[i];
    const RequestMetrics& y = b.requests[i];
    EXPECT_EQ(x.id, y.id) << "request " << i;
    EXPECT_EQ(x.attempt, y.attempt) << "request " << x.id;
    EXPECT_EQ(x.generated, y.generated) << "request " << x.id;
    EXPECT_EQ(x.saved_tokens, y.saved_tokens) << "request " << x.id;
    EXPECT_EQ(x.resumed_tokens, y.resumed_tokens) << "request " << x.id;
    EXPECT_EQ(x.arrival, y.arrival) << "request " << x.id;
    EXPECT_EQ(x.admitted, y.admitted) << "request " << x.id;
    EXPECT_EQ(x.first_token, y.first_token) << "request " << x.id;
    EXPECT_EQ(x.completion, y.completion) << "request " << x.id;
  }
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    const ReplicaReport& x = a.replicas[i];
    const ReplicaReport& y = b.replicas[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.dispatched, y.dispatched) << x.name;
    EXPECT_EQ(x.spawned_at, y.spawned_at) << x.name;
    EXPECT_EQ(x.alive_until, y.alive_until) << x.name;
    EXPECT_EQ(x.utilization, y.utilization) << x.name;
    EXPECT_EQ(x.failed, y.failed) << x.name;
    EXPECT_EQ(x.retired, y.retired) << x.name;
    EXPECT_EQ(x.serve.makespan, y.serve.makespan) << x.name;
    EXPECT_EQ(x.serve.busy, y.serve.busy) << x.name;
    EXPECT_EQ(x.serve.generated_tokens, y.serve.generated_tokens) << x.name;
    EXPECT_EQ(x.serve.steps.size(), y.serve.steps.size()) << x.name;
    EXPECT_EQ(x.serve.cache.saved_tokens, y.serve.cache.saved_tokens) << x.name;
    EXPECT_EQ(x.serve.expert_hits, y.serve.expert_hits) << x.name;
    EXPECT_EQ(x.serve.expert_misses, y.serve.expert_misses) << x.name;
    EXPECT_EQ(x.serve.handoffs, y.serve.handoffs) << x.name;
    EXPECT_EQ(x.serve.handoff_tokens, y.serve.handoff_tokens) << x.name;
    EXPECT_EQ(x.serve.handoff_transfer, y.serve.handoff_transfer) << x.name;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.tokens_per_s, b.tokens_per_s);
  EXPECT_EQ(a.ttft_ms.p50, b.ttft_ms.p50);
  EXPECT_EQ(a.ttft_ms.p95, b.ttft_ms.p95);
  EXPECT_EQ(a.ttft_ms.p99, b.ttft_ms.p99);
  EXPECT_EQ(a.tpot_ms.p50, b.tpot_ms.p50);
  EXPECT_EQ(a.e2e_ms.p50, b.e2e_ms.p50);
  EXPECT_EQ(a.e2e_ms.p95, b.e2e_ms.p95);
  EXPECT_EQ(a.e2e_ms.p99, b.e2e_ms.p99);
  EXPECT_EQ(a.imbalance, b.imbalance);
  EXPECT_EQ(a.fleet_utilization, b.fleet_utilization);
  EXPECT_EQ(a.replica_seconds, b.replica_seconds);
  EXPECT_EQ(a.peak_replicas, b.peak_replicas);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.cached_prefill_tokens, b.cached_prefill_tokens);
  EXPECT_EQ(a.expert_hits, b.expert_hits);
  EXPECT_EQ(a.expert_misses, b.expert_misses);
  EXPECT_EQ(a.expert_hit_rate, b.expert_hit_rate);
  EXPECT_EQ(a.expert_migrations, b.expert_migrations);
  EXPECT_EQ(a.pruned_requests, b.pruned_requests);
  EXPECT_EQ(a.handoffs, b.handoffs);
  EXPECT_EQ(a.handoff_tokens, b.handoff_tokens);
  EXPECT_EQ(a.handoff_transfer_s, b.handoff_transfer_s);
  const auto expect_pools_identical = [](const ClusterReport::PoolReport& x,
                                         const ClusterReport::PoolReport& y,
                                         const char* pool) {
    EXPECT_EQ(x.replicas, y.replicas) << pool;
    EXPECT_EQ(x.dispatched, y.dispatched) << pool;
    EXPECT_EQ(x.steps, y.steps) << pool;
    EXPECT_EQ(x.busy_s, y.busy_s) << pool;
    EXPECT_EQ(x.replica_seconds, y.replica_seconds) << pool;
    EXPECT_EQ(x.utilization, y.utilization) << pool;
    EXPECT_EQ(x.mean_step_ms, y.mean_step_ms) << pool;
  };
  expect_pools_identical(a.prefill_pool, b.prefill_pool, "prefill pool");
  expect_pools_identical(a.decode_pool, b.decode_pool, "decode pool");
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    EXPECT_EQ(a.events[i].time, b.events[i].time) << "event " << i;
    EXPECT_EQ(a.events[i].replica, b.events[i].replica) << "event " << i;
    EXPECT_EQ(a.events[i].detail, b.events[i].detail) << "event " << i;
  }
}

/// Run one scenario twice -- calendar loop vs reference loop -- with fresh
/// (stateful) dispatchers/autoscalers, and demand bit-identical reports.
struct Scenario {
  std::vector<Request> trace;
  RequestShape shape{};  ///< envelope the trace was drawn from (metadata only)
  std::vector<ReplicaSpec> specs;
  ClusterConfig cfg;
  DispatchPolicy policy = DispatchPolicy::kJoinShortestQueue;
  std::uint64_t dispatch_seed = 7;
  AutoscaleConfig autoscale;
  bool autoscaled = false;
  std::size_t threads = 1;  ///< calendar-loop worker threads (reference stays 1)
  moe::MoeModelConfig model = tiny_model();
};

inline ClusterReport run_scenario(const Scenario& sc, bool reference_loop) {
  ClusterConfig cfg = sc.cfg;
  cfg.reference_loop = reference_loop;
  cfg.threads = reference_loop ? 1 : sc.threads;
  ClusterSim cluster{core::SystemConfig::dac24(), sc.model, moe::SkewProfile::switch_like(),
                     sc.specs, cfg};
  const auto dispatcher = make_dispatcher(sc.policy, sc.dispatch_seed);
  if (!sc.autoscaled) return cluster.run(sc.trace, *dispatcher);
  const auto autoscaler = make_queue_pressure_autoscaler(sc.autoscale);
  return cluster.run(sc.trace, *dispatcher, autoscaler.get());
}

inline void expect_loops_agree(const Scenario& sc) {
  expect_reports_identical(run_scenario(sc, /*reference_loop=*/false),
                           run_scenario(sc, /*reference_loop=*/true));
}

/// The parallel calendar loop must match the sequential reference at every
/// thread count: thread scheduling may reorder the advancement work, but the
/// ascending-replica commit order pins every counter and RNG stream.
inline void expect_threads_agree(Scenario sc) {
  const ClusterReport ref = run_scenario(sc, /*reference_loop=*/true);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    sc.threads = threads;
    expect_reports_identical(run_scenario(sc, /*reference_loop=*/false), ref);
  }
}

}  // namespace monde::serve::fixtures
