// Unit tests for GEMM descriptors and the GPU / CPU / transformer cost models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "compute/cpu.hpp"
#include "compute/gemm.hpp"
#include "compute/gpu.hpp"
#include "compute/transformer.hpp"

namespace monde::compute {
namespace {

TEST(GemmShape, FlopsAndBytes) {
  const GemmShape g{4, 256, 1024};
  EXPECT_DOUBLE_EQ(g.flops(), 2.0 * 4 * 256 * 1024);
  EXPECT_EQ(g.a_bytes(DataType::kBf16).count(), 4u * 1024 * 2);
  EXPECT_EQ(g.b_bytes(DataType::kBf16).count(), 1024u * 256 * 2);
  EXPECT_EQ(g.c_bytes(DataType::kFp32).count(), 4u * 256 * 4);
  EXPECT_GT(g.arithmetic_intensity(DataType::kBf16), 0.0);
}

TEST(GemmShape, IntensityGrowsWithRows) {
  const GemmShape small{1, 4096, 1024};
  const GemmShape big{512, 4096, 1024};
  EXPECT_GT(big.arithmetic_intensity(DataType::kBf16),
            small.arithmetic_intensity(DataType::kBf16));
}

TEST(ExpertShape, MatchesPaperEquations) {
  // Equation 1 per-expert term: 2 * dmodel * dff parameters.
  const ExpertShape e{7, 2048, 8192};
  EXPECT_EQ(e.weight_bytes(DataType::kBf16).count(), 2ull * 2048 * 8192 * 2);
  // Equation 2: 2 * tokens * dmodel activation elements.
  EXPECT_EQ(e.activation_bytes(DataType::kBf16).count(), 2ull * 7 * 2048 * 2);
  // Two linears: dmodel->dff and dff->dmodel.
  EXPECT_EQ(e.linear1().n, 8192);
  EXPECT_EQ(e.linear2().n, 2048);
  EXPECT_DOUBLE_EQ(e.flops(), 2.0 * 7 * 8192 * 2048 * 2.0);
}

TEST(ExpertShape, NllbExpertIs67MB) {
  const ExpertShape e{1, 2048, 8192};
  EXPECT_NEAR(e.weight_bytes(DataType::kBf16).as_mib(), 64.0, 0.1);  // 64 MiB = 67.1 MB
}

TEST(GpuModel, A100SpecValues) {
  const GpuSpec s = GpuSpec::a100_pcie_40gb();
  EXPECT_NEAR(s.peak_flops.as_tflops(), 312.0, 0.1);
  EXPECT_NEAR(s.hbm_bandwidth.as_gbps(), 1555.0, 0.1);
}

TEST(GpuModel, SkinnyGemmUnderutilizes) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const Flops skinny = gpu.effective_flops({1, 4096, 1024});
  const Flops fat = gpu.effective_flops({4096, 4096, 1024});
  EXPECT_LT(skinny.as_tflops(), fat.as_tflops());
  EXPECT_LE(fat.as_tflops(),
            gpu.spec().peak_flops.as_tflops() * gpu.spec().max_compute_utilization + 1e-9);
}

TEST(GpuModel, MemoryBoundSmallTokenExpert) {
  // Figure 2(c): a single-token expert is memory-bound; its latency tracks
  // the weight bytes over HBM bandwidth (plus launch overhead).
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const ExpertShape e{1, 1024, 4096};
  const Duration t = gpu.expert_time(e, DataType::kBf16);
  const Duration weight_stream = transfer_time(
      e.weight_bytes(DataType::kBf16),
      gpu.spec().hbm_bandwidth * gpu.spec().hbm_efficiency);
  EXPECT_GT(t, weight_stream);
  EXPECT_LT(t, weight_stream + 3.0 * gpu.spec().kernel_launch);
}

TEST(GpuModel, ComputeBoundLargeGemm) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const GemmShape g{8192, 8192, 8192};
  const Duration t = gpu.gemm_time(g, DataType::kBf16);
  const Duration ideal = compute_time(g.flops(), gpu.effective_flops(g));
  EXPECT_NEAR(t.ms(), (ideal + gpu.spec().kernel_launch).ms(), 0.01);
}

TEST(GpuModel, LatencyMonotoneInTokens) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  Duration prev = Duration::zero();
  for (const std::int64_t t : {1, 8, 64, 512, 4096}) {
    const Duration cur = gpu.expert_time({t, 1024, 4096}, DataType::kBf16);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(GpuModel, ZeroTokensZeroTime) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  EXPECT_EQ(gpu.expert_time({0, 1024, 4096}, DataType::kBf16), Duration::zero());
}

TEST(CpuModel, SlowerThanGpuForExperts) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const CpuModel cpu{CpuSpec::xeon_silver_4310()};
  const ExpertShape e{32, 2048, 8192};
  EXPECT_GT(cpu.expert_time(e, DataType::kBf16), gpu.expert_time(e, DataType::kBf16));
}

TEST(CpuModel, EffectiveBandwidthDerated) {
  const CpuModel cpu{CpuSpec::xeon_silver_4310()};
  EXPECT_LT(cpu.effective_bandwidth().as_gbps(), cpu.spec().mem_bandwidth.as_gbps());
  EXPECT_NEAR(cpu.spec().mem_bandwidth.as_gbps(), 187.0, 0.1);  // Table 2
}

TEST(CpuModel, OverheadDominatesTinyGemm) {
  const CpuModel cpu{CpuSpec::xeon_silver_4310()};
  const Duration t = cpu.gemm_time({1, 8, 8}, DataType::kBf16);
  EXPECT_GE(t, cpu.spec().op_overhead);
  EXPECT_LT(t, cpu.spec().op_overhead * 1.1);
}

TEST(TransformerCost, EncoderBlockComponentsPositive) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const TransformerCostModel m{gpu, DataType::kBf16};
  const auto dense = m.encoder_block(4, 512, 1024, 4096, /*dense_ffn=*/true);
  EXPECT_GT(dense.attention, Duration::zero());
  EXPECT_GT(dense.dense_ffn, Duration::zero());
  EXPECT_GT(dense.elementwise, Duration::zero());
  const auto moe = m.encoder_block(4, 512, 1024, 4096, /*dense_ffn=*/false);
  EXPECT_EQ(moe.dense_ffn, Duration::zero());
  EXPECT_LT(moe.total(), dense.total());
}

TEST(TransformerCost, DecoderCrossAttentionCosts) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const TransformerCostModel m{gpu, DataType::kBf16};
  const auto with_cross = m.decoder_block(4, 10, 512, 1024, 4096, true);
  const auto without = m.decoder_block(4, 10, 0, 1024, 4096, true);
  EXPECT_GT(with_cross.attention, without.attention);
}

TEST(TransformerCost, DecoderAttentionGrowsWithPast) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const TransformerCostModel m{gpu, DataType::kBf16};
  const auto early = m.decoder_block(1, 1, 0, 1024, 4096, true);
  const auto late = m.decoder_block(1, 2048, 0, 1024, 4096, true);
  EXPECT_GE(late.attention, early.attention);
}

TEST(TransformerCost, GatingScalesWithTokens) {
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const TransformerCostModel m{gpu, DataType::kBf16};
  EXPECT_LT(m.gating_time(16, 128, 1024), m.gating_time(4096, 128, 1024));
  EXPECT_GT(m.combine_time(128, 1024), Duration::zero());
  EXPECT_THROW((void)m.gating_time(0, 128, 1024), Error);
}

// Property sweep: roofline sanity across shapes -- latency is never below
// either the pure-compute or pure-memory bound.
struct RooflineCase {
  std::int64_t m, n, k;
};

class GpuRooflineTest : public ::testing::TestWithParam<RooflineCase> {};

TEST_P(GpuRooflineTest, LatencyAboveBothBounds) {
  const auto [m, n, k] = GetParam();
  const GpuModel gpu{GpuSpec::a100_pcie_40gb()};
  const GemmShape g{m, n, k};
  const Duration t = gpu.gemm_time(g, DataType::kBf16);
  const Duration compute_bound = compute_time(g.flops(), gpu.spec().peak_flops);
  const Duration memory_bound = transfer_time(g.total_bytes(DataType::kBf16),
                                              gpu.spec().hbm_bandwidth);
  EXPECT_GE(t.ns(), compute_bound.ns() * 0.999);
  EXPECT_GE(t.ns(), memory_bound.ns() * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GpuRooflineTest,
                         ::testing::Values(RooflineCase{1, 4096, 1024},
                                           RooflineCase{16, 8192, 2048},
                                           RooflineCase{512, 1024, 1024},
                                           RooflineCase{2048, 8192, 2048},
                                           RooflineCase{3, 333, 777}));

}  // namespace
}  // namespace monde::compute
