// Unit tests for expert-aware serving: per-request ExpertProfile derivation
// (deterministic, layer-major, signature-consistent), expert-miss pricing
// and preloads in ServerSim, the gating-aware dispatchers, and the
// cluster-level rebalance / pruned-degraded-mode machinery.
#include <gtest/gtest.h>

#include <bit>

#include "moe/expert_profile.hpp"
#include "moe/workload.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"
#include "serve_fixtures.hpp"

namespace monde::serve {
namespace {

// The shared fixtures' expert-model variant (2 decoder MoE layers x 16
// experts, switch_variant defaults for vocab/top_k).
using fixtures::small_shape;

moe::MoeModelConfig tiny_model() { return fixtures::tiny_expert_model(); }

TEST(ExpertProfile, DerivationIsDeterministicAndLayerMajor) {
  moe::WorkloadGenerator a{tiny_model(), moe::SkewProfile::switch_like(), 42};
  moe::WorkloadGenerator b{tiny_model(), moe::SkewProfile::switch_like(), 42};
  const moe::ExpertProfile p1 = a.expert_profile_for(7, /*width=*/2);
  const moe::ExpertProfile p2 = b.expert_profile_for(7, /*width=*/2);
  ASSERT_EQ(p1.experts.size(), p2.experts.size());
  for (std::size_t i = 0; i < p1.experts.size(); ++i) {
    EXPECT_EQ(p1.experts[i].layer, p2.experts[i].layer);
    EXPECT_EQ(p1.experts[i].expert, p2.experts[i].expert);
  }
  EXPECT_EQ(p1.signature, p2.signature);
  EXPECT_FALSE(p1.empty());

  // Layer-major: decoder MoE layer ids, ascending, at most `width` each.
  const int first_layer = tiny_model().encoder_moe_layers();
  int prev_layer = first_layer - 1;
  int run = 0;
  for (const auto& e : p1.experts) {
    EXPECT_GE(e.layer, first_layer);
    EXPECT_GE(e.layer, prev_layer);
    run = e.layer == prev_layer ? run + 1 : 1;
    EXPECT_LE(run, 2);
    prev_layer = e.layer;
    EXPECT_GE(e.expert, 0);
    EXPECT_LT(e.expert, 16);
  }

  // Different requests draw different profiles: across a batch of ids at
  // least one signature must differ from p1's (individual pairs may
  // collide when two requests happen to sample the same top experts).
  bool any_differs = false;
  for (std::uint64_t rid = 1; rid <= 16; ++rid) {
    if (a.expert_profile_for(rid, /*width=*/2).signature != p1.signature) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
  // The profiling stream never perturbs the served workload's stream.
  const auto before = a.decoder_step_for(7, 0);
  (void)a.expert_profile_for(7, /*width=*/2);
  const auto after = a.decoder_step_for(7, 0);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].tokens_per_expert, after[i].tokens_per_expert);
  }
}

TEST(ExpertProfile, SignatureMatchesEntries) {
  moe::ExpertProfile p;
  p.experts = {{2, 3}, {3, 7}};
  p.rebuild_signature();
  const std::uint64_t expected = (std::uint64_t{1} << moe::expert_signature_bit(2, 3)) |
                                 (std::uint64_t{1} << moe::expert_signature_bit(3, 7));
  EXPECT_EQ(p.signature, expected);
  p.experts.clear();
  p.rebuild_signature();
  EXPECT_EQ(p.signature, 0u);
  EXPECT_TRUE(p.empty());
}

TEST(ExpertServing, MissesArePricedIntoStepsAndReport) {
  const auto mk_engine = [] {
    return core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                 moe::SkewProfile::switch_like(),
                                 core::StrategyKind::kMondeLoadBalanced, 42};
  };
  moe::WorkloadGenerator profiler{tiny_model(), moe::SkewProfile::switch_like(), 42};
  const auto run_one = [&](const ExpertServingConfig& expert) {
    auto engine = mk_engine();
    ServerSim server{engine, SchedulerConfig{}, Duration::zero(), FaultSpec{},
                     PrefixCacheConfig{}, expert};
    for (std::uint64_t id = 0; id < 4; ++id) {
      Request rq;
      rq.id = id;
      rq.arrival = Duration::zero();
      rq.prompt_len = 16;
      rq.max_new_tokens = 4;
      rq.expert_profile = profiler.expert_profile_for(id, /*width=*/2);
      server.enqueue(rq);
    }
    server.drain();
    return server.report();
  };
  ExpertServingConfig off;
  ExpertServingConfig on;
  on.enabled = true;
  on.cache_capacity = 4;  // far fewer slots than 2 layers x 16 experts
  const ServeReport r_off = run_one(off);
  const ServeReport r_on = run_one(on);

  EXPECT_EQ(r_off.expert_hits + r_off.expert_misses, 0u);
  EXPECT_GT(r_on.expert_misses, 0u);  // cold cache must fetch
  EXPECT_GT(r_on.expert_hits, 0u);    // resident experts re-hit across steps
  EXPECT_GT(r_on.expert_hit_rate, 0.0);
  EXPECT_LE(r_on.expert_hit_rate, 1.0);
  EXPECT_GT(r_on.resident_experts, 0u);
  EXPECT_LE(r_on.resident_experts, on.cache_capacity);
  // Fetches cost simulated time: same requests, strictly later completion.
  EXPECT_GT(r_on.makespan, r_off.makespan);
  Duration fetch_total = Duration::zero();
  for (const StepRecord& s : r_on.steps) fetch_total += s.expert_fetch;
  EXPECT_GT(fetch_total, Duration::zero());
  EXPECT_NEAR((r_on.makespan - r_off.makespan).ms(), fetch_total.ms(), 1e-9);
}

TEST(ExpertServing, PreloadInstallsResidencyWithoutDemandMisses) {
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  ExpertServingConfig expert;
  expert.enabled = true;
  expert.cache_capacity = 8;
  ServerSim server{engine, SchedulerConfig{}, Duration::zero(), FaultSpec{},
                   PrefixCacheConfig{}, expert};
  const std::vector<core::ExpertId> hot{{2, 0}, {2, 1}, {3, 5}};
  EXPECT_EQ(server.preload_experts(hot), 3u);
  EXPECT_EQ(server.preload_experts(hot), 0u);  // already resident
  for (const core::ExpertId& id : hot) EXPECT_TRUE(server.expert_cache().contains(id));
  // Preloads are transfers, not demand misses.
  EXPECT_EQ(server.expert_cache().misses(), 0u);
  EXPECT_NE(server.expert_signature(), 0u);

  // A disabled server's preload is an inert no-op.
  auto engine2 = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                       moe::SkewProfile::switch_like(),
                                       core::StrategyKind::kMondeLoadBalanced, 42};
  ServerSim plain{engine2, SchedulerConfig{}};
  EXPECT_EQ(plain.preload_experts(hot), 0u);
  EXPECT_EQ(plain.expert_signature(), 0u);
}

ReplicaSnapshot snap(std::size_t replica, std::int64_t outstanding, std::uint64_t sig) {
  ReplicaSnapshot s;
  s.replica = replica;
  s.outstanding_tokens = outstanding;
  s.expert_sig = sig;
  return s;
}

Request profiled_request(std::vector<moe::ExpertProfile::Entry> entries) {
  Request rq;
  rq.expert_profile.experts = std::move(entries);
  rq.expert_profile.rebuild_signature();
  return rq;
}

TEST(ExpertDispatch, AffinityPrefersOverlapAndBreaksTiesByLoad) {
  const auto dispatcher = make_dispatcher(DispatchPolicy::kExpertAffinity, 17);
  EXPECT_EQ(dispatcher->name(), "expert-affinity");
  const Request rq = profiled_request({{2, 3}, {3, 7}});
  const std::uint64_t full = rq.expert_profile.signature;
  const std::uint64_t half = std::uint64_t{1} << moe::expert_signature_bit(2, 3);

  // Full overlap wins over partial and none (loads equal: no spill-over).
  std::vector<ReplicaSnapshot> v{snap(0, 10, 0), snap(1, 10, full), snap(2, 10, half)};
  EXPECT_EQ(dispatcher->pick(v, rq), 1u);
  // Equal overlap: the less-loaded replica wins.
  std::vector<ReplicaSnapshot> tie{snap(0, 20, full), snap(1, 10, full)};
  EXPECT_EQ(dispatcher->pick(tie, rq), 1u);
  // No profile: reduces to least-outstanding-tokens.
  Request empty;
  std::vector<ReplicaSnapshot> plain{snap(0, 20, full), snap(1, 10, 0)};
  EXPECT_EQ(dispatcher->pick(plain, empty), 1u);
}

TEST(ExpertDispatch, AffinitySpillsOverWhenChoiceIsOverloaded) {
  const auto dispatcher = make_dispatcher(DispatchPolicy::kExpertAffinity, 17);
  const Request rq = profiled_request({{2, 3}});
  // With 2 replicas the spill-over probes are exactly both of them, so the
  // outcome is RNG-independent: the overlap choice (0) carries more than
  // twice the load of the alternative and must be abandoned.
  std::vector<ReplicaSnapshot> v{snap(0, 1000, rq.expert_profile.signature),
                                 snap(1, 10, 0)};
  EXPECT_EQ(dispatcher->pick(v, rq), 1u);
  // Below the 2x threshold the affinity choice sticks.
  std::vector<ReplicaSnapshot> ok{snap(0, 15, rq.expert_profile.signature),
                                  snap(1, 10, 0)};
  EXPECT_EQ(dispatcher->pick(ok, rq), 0u);
}

TEST(ExpertDispatch, ShardedHomesByPrimaryExpert) {
  const auto dispatcher = make_dispatcher(DispatchPolicy::kExpertSharded, 17);
  EXPECT_EQ(dispatcher->name(), "expert-sharded");
  const Request rq = profiled_request({{2, 3}, {3, 7}});
  std::vector<ReplicaSnapshot> v{snap(0, 10, 0), snap(1, 10, 0), snap(2, 10, 0),
                                 snap(3, 10, 0)};
  const std::size_t home = moe::expert_signature_bit(2, 3) % v.size();
  EXPECT_EQ(dispatcher->pick(v, rq), home);
  // Same primary expert, same home -- that is the partitioning invariant.
  const Request rq2 = profiled_request({{2, 3}, {3, 1}});
  EXPECT_EQ(dispatcher->pick(v, rq2), home);
  // No profile: reduces to least-outstanding-tokens.
  Request empty;
  std::vector<ReplicaSnapshot> plain{snap(0, 20, 0), snap(1, 5, 0), snap(2, 30, 0),
                                     snap(3, 10, 0)};
  EXPECT_EQ(dispatcher->pick(plain, empty), 1u);
}

TEST(ExpertCluster, ReportsResidencyRebalanceAndPruning) {
  ClusterConfig cfg;
  cfg.expert.enabled = true;
  // Fewer cache slots than hot experts: every rebalance tick finds at
  // least one hot expert absent from each replica, so preloads must fetch.
  cfg.expert.cache_capacity = 2;
  cfg.expert.rebalance_period = Duration::millis(10.0);
  cfg.expert.rebalance_hot_experts = 3;
  cfg.expert.prune_outstanding_tokens = 64;
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(),
                     uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced,
                                   SchedulerConfig{}),
                     cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kExpertAffinity, 17);
  const auto trace = poisson_trace(48, 400.0, small_shape(), 21);
  const ClusterReport rep = cluster.run(trace, *dispatcher);

  EXPECT_GT(rep.expert_hits + rep.expert_misses, 0u);
  EXPECT_GT(rep.expert_hit_rate, 0.0);
  EXPECT_LE(rep.expert_hit_rate, 1.0);
  EXPECT_GT(rep.expert_migrations, 0u);  // the tick preloaded hot experts
  EXPECT_GT(rep.pruned_requests, 0u);    // the overload threshold tripped
  bool saw_rebalance = false;
  for (const ClusterEvent& ev : rep.events) {
    if (ev.kind == ClusterEvent::Kind::kExpertRebalance) saw_rebalance = true;
  }
  EXPECT_TRUE(saw_rebalance);
  EXPECT_EQ(to_string(ClusterEvent::Kind::kExpertRebalance), "expert-rebalance");
}

TEST(ExpertCluster, DisabledConfigReportsAllZeros) {
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(),
                     uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced,
                                   SchedulerConfig{}),
                     ClusterConfig{}};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kLeastOutstandingTokens, 17);
  const ClusterReport rep = cluster.run(poisson_trace(12, 200.0, small_shape(), 21),
                                        *dispatcher);
  EXPECT_EQ(rep.expert_hits, 0u);
  EXPECT_EQ(rep.expert_misses, 0u);
  EXPECT_DOUBLE_EQ(rep.expert_hit_rate, 0.0);
  EXPECT_EQ(rep.expert_migrations, 0u);
  EXPECT_EQ(rep.pruned_requests, 0u);
}

// --- Departing requests release expert residency (evacuate/harvest) ---------

TEST(ExpertServing, EvacuationReleasesDepartingResidencyKeepsWarmSets) {
  // Request 0 (short) and request 1 (long) share expert (2,0); (3,0) is
  // request 0's alone and (3,5) request 1's alone. Once 0 has finished and 1
  // is evacuated, the experts pinned only by in-flight work must leave the
  // cache with it -- (2,0) because 0's pin was already released at its
  // finish, (3,5) trivially -- while 0's private (3,0) stays warm: finished
  // requests leave their experts resident for future overlap.
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  ExpertServingConfig expert;
  expert.enabled = true;
  expert.cache_capacity = 32;  // roomy: no LRU pressure muddies the test
  ServerSim server{engine, SchedulerConfig{}, Duration::zero(), FaultSpec{},
                   PrefixCacheConfig{}, expert};
  Request a = profiled_request({{2, 0}, {3, 0}});
  a.id = 0;
  a.arrival = Duration::zero();
  a.prompt_len = 16;
  a.max_new_tokens = 2;
  Request b = profiled_request({{2, 0}, {3, 5}});
  b.id = 1;
  b.arrival = Duration::zero();
  b.prompt_len = 16;
  b.max_new_tokens = 512;
  server.enqueue(a);
  server.enqueue(b);
  Duration t = Duration::millis(1);
  while (server.in_flight() > 1 && t < Duration::seconds(2)) {
    server.advance_to(t);
    t += Duration::millis(1);
  }
  ASSERT_EQ(server.in_flight(), 1u);  // 0 finished, 1 still decoding
  ASSERT_TRUE(server.expert_cache().contains({2, 0}));
  ASSERT_TRUE(server.expert_cache().contains({3, 0}));
  ASSERT_TRUE(server.expert_cache().contains({3, 5}));

  const std::vector<Request> moved = server.evacuate();
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].id, 1u);
  EXPECT_GT(moved[0].resume.resident_tokens(), 0);  // progress annotations intact
  EXPECT_FALSE(server.expert_cache().contains({2, 0}));
  EXPECT_FALSE(server.expert_cache().contains({3, 5}));
  EXPECT_TRUE(server.expert_cache().contains({3, 0}));
}

TEST(ExpertServing, HarvestAfterFailStopReleasesResidency) {
  // Same invariant on the failure path: requests stranded by a fail-stop
  // take their expert pins with them, so a re-homed request re-fetches on
  // the retry replica instead of phantom-hitting the dead one's cache.
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  ExpertServingConfig expert;
  expert.enabled = true;
  expert.cache_capacity = 32;
  FaultSpec fault;
  fault.fail_at = Duration::millis(5);
  ServerSim server{engine, SchedulerConfig{}, Duration::zero(), fault,
                   PrefixCacheConfig{}, expert};
  Request rq = profiled_request({{2, 1}, {3, 2}});
  rq.id = 0;
  rq.arrival = Duration::zero();
  rq.prompt_len = 16;
  rq.max_new_tokens = 4096;  // still decoding at the death
  server.enqueue(rq);
  server.advance_to(Duration::millis(10));
  ASSERT_TRUE(server.failed());
  ASSERT_TRUE(server.expert_cache().contains({2, 1}));  // fetched pre-death
  const std::vector<Request> stranded = server.harvest_stranded();
  ASSERT_EQ(stranded.size(), 1u);
  EXPECT_FALSE(server.expert_cache().contains({2, 1}));
  EXPECT_FALSE(server.expert_cache().contains({3, 2}));
}

TEST(ExpertCluster, ScaleDownMigrationCompletesWithExpertServing) {
  // End-to-end regression for evacuate() x expert residency: a shrinking
  // fleet live-migrates in-flight profiled requests and every request still
  // completes exactly once, with expert accounting intact.
  ClusterConfig cfg;
  cfg.expert.enabled = true;
  cfg.expert.cache_capacity = 4;
  cfg.autoscale_period = Duration::millis(2);
  cfg.cache.enabled = true;
  cfg.cache.kv_bytes_per_token = Bytes{16};
  cfg.cache.migration_bw = Bandwidth::gbps(100.0);
  cfg.cache.migrate_on_retire = true;
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(),
                     uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced,
                                   SchedulerConfig{}),
                     cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kExpertAffinity, 17);
  const auto trace = bursty_trace(16, 16, Duration::millis(1), small_shape(), 3);
  AutoscaleConfig as;
  as.min_replicas = 1;
  as.max_replicas = 2;
  as.high_tokens_per_replica = 1 << 20;  // never grow...
  as.low_tokens_per_replica = 1 << 19;   // ...always want to shrink
  const auto autoscaler = make_queue_pressure_autoscaler(as);
  const ClusterReport rep = cluster.run(trace, *dispatcher, autoscaler.get());
  ASSERT_EQ(rep.requests.size(), trace.size());
  EXPECT_GT(rep.migrations, 0u);
  EXPECT_GT(rep.expert_hits + rep.expert_misses, 0u);
}

TEST(ExpertCluster, ValidationCatchesBadConfigs) {
  ExpertServingConfig bad;
  bad.enabled = true;
  bad.cache_capacity = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = {};
  bad.enabled = true;
  bad.profile_width = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = {};
  bad.enabled = true;
  bad.rebalance_period = Duration::millis(1.0);
  bad.rebalance_hot_experts = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = {};
  bad.enabled = true;
  bad.prune_outstanding_tokens = 10;
  bad.prune_width = 0;
  EXPECT_THROW(bad.validate(), Error);
  // Disabled configs are never validated-failed, however malformed.
  bad.enabled = false;
  EXPECT_NO_THROW(bad.validate());
}

}  // namespace
}  // namespace monde::serve
