// common::TaskPool contract tests (PR 7): every index runs exactly once
// regardless of chunking, the lowest-index exception is the one rethrown
// (thread-count-invariant failure behavior), pools are reusable across many
// run() calls, and the size-1 pool degenerates to the plain sequential
// loop. Plus the shared-simulator half of the parallel cluster: concurrent
// NdpCoreSim calls must return latencies bit-identical to a fresh
// single-threaded simulator (the memo keeps one canonical value per shape).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/taskpool.hpp"
#include "compute/gemm.hpp"
#include "core/system_config.hpp"
#include "ndp/ndp_core.hpp"

namespace monde {
namespace {

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    common::TaskPool pool{threads};
    EXPECT_EQ(pool.threads(), threads);
    // n values straddling the chunking regimes: empty, single, fewer than
    // threads, not a chunk multiple, and far more than threads * 8.
    for (const std::size_t n : {0u, 1u, 3u, 17u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.run(n, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads << " thread(s)";
      }
    }
  }
}

TEST(TaskPool, CallerObservesAllWritesAfterRun) {
  // run() returning must be a synchronization point: the caller reads the
  // workers' plain (non-atomic) writes afterwards, exactly like the cluster
  // loop reads replica state during its sequential commit phase.
  common::TaskPool pool{4};
  std::vector<std::size_t> out(5000, 0);
  pool.run(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST(TaskPool, RethrowsLowestIndexException) {
  common::TaskPool pool{4};
  std::vector<std::atomic<int>> hits(64);
  try {
    pool.run(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 11 || i == 47) throw std::runtime_error("boom at " + std::to_string(i));
    });
    FAIL() << "run() should have rethrown";
  } catch (const std::runtime_error& e) {
    // Sequential order would surface index 11 first; the pool must agree no
    // matter which worker hit which throwing index.
    EXPECT_STREQ(e.what(), "boom at 11");
  }
  // In the parallel path every index still runs: a throw abandons only that
  // one task, never its chunk, so the commit phase sees a complete batch.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPool, ReusableAcrossManyRuns) {
  common::TaskPool pool{4};
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(37, [&](std::size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 50u * (36u * 37u) / 2u);
  // A failed run must not poison the next one.
  EXPECT_THROW(pool.run(8, [](std::size_t) { throw std::logic_error("once"); }),
               std::logic_error);
  std::atomic<std::size_t> after{0};
  pool.run(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8u);
}

TEST(TaskPool, SingleThreadPoolSpawnsNothingAndStaysSequential) {
  common::TaskPool pool{1};
  EXPECT_EQ(pool.threads(), 1u);
  // Sequential semantics: strictly ascending order, first throw propagates
  // immediately (later indices do NOT run -- the plain-loop contract).
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  std::size_t ran = 0;
  EXPECT_THROW(pool.run(5,
                        [&](std::size_t i) {
                          ++ran;
                          if (i == 2) throw std::runtime_error("stop");
                        }),
               std::runtime_error);
  EXPECT_EQ(ran, 3u);
}

TEST(TaskPool, RejectsZeroThreads) {
  EXPECT_THROW(common::TaskPool pool{0}, Error);
}

// --- Concurrent NdpCoreSim memoization --------------------------------------

TEST(NdpMemoConcurrency, ParallelLookupsMatchSequentialSim) {
  const core::SystemConfig sys = core::SystemConfig::dac24();
  // A small shape set with repeats: plenty of racing misses on first touch,
  // then hit-path reads of just-published entries.
  std::vector<compute::ExpertShape> shapes;
  for (int t = 1; t <= 6; ++t) {
    shapes.push_back(compute::ExpertShape{/*tokens=*/t, /*dmodel=*/512, /*dff=*/1024});
  }
  const std::size_t kCalls = 96;

  ndp::NdpCoreSim shared{sys.ndp, sys.monde_mem};
  std::vector<Duration> latencies(kCalls);
  common::TaskPool pool{8};
  pool.run(kCalls, [&](std::size_t i) {
    latencies[i] =
        shared.simulate_expert(shapes[i % shapes.size()], compute::DataType::kFp16).latency;
  });

  // Counters only see each lookup once (they may split hit/miss differently
  // under races, but the total is exact).
  EXPECT_EQ(shared.memo_hits() + shared.memo_misses(), kCalls);

  // Every latency equals what a fresh, strictly sequential simulator
  // computes: memoized values are canonical, not racer-dependent.
  ndp::NdpCoreSim fresh{sys.ndp, sys.monde_mem};
  for (std::size_t i = 0; i < kCalls; ++i) {
    const Duration expect =
        fresh.simulate_expert(shapes[i % shapes.size()], compute::DataType::kFp16).latency;
    EXPECT_EQ(latencies[i], expect) << "call " << i;
  }
}

TEST(NdpMemoConcurrency, HitReturnsIdenticalResultObject) {
  const core::SystemConfig sys = core::SystemConfig::dac24();
  ndp::NdpCoreSim sim{sys.ndp, sys.monde_mem};
  const compute::GemmShape shape{/*m=*/4, /*n=*/512, /*k=*/256};
  const ndp::NdpKernelResult first = sim.simulate_gemm(shape, compute::DataType::kFp16);
  const ndp::NdpKernelResult again = sim.simulate_gemm(shape, compute::DataType::kFp16);
  EXPECT_EQ(first.latency, again.latency);
  EXPECT_EQ(first.compute_cycles, again.compute_cycles);
  EXPECT_EQ(first.read_blocks, again.read_blocks);
  EXPECT_EQ(first.write_blocks, again.write_blocks);
  EXPECT_EQ(sim.memo_hits(), 1u);
  EXPECT_EQ(sim.memo_misses(), 1u);
}

}  // namespace
}  // namespace monde
