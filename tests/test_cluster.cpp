// Unit tests for the cluster serving layer: dispatch policies, the
// multi-replica ClusterSim, and its equivalence to a single ServerSim.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "common/error.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"
#include "serve_fixtures.hpp"

namespace monde::serve {
namespace {

// tiny_model()/small_shape() come from the shared serving fixtures.
using fixtures::small_shape;
using fixtures::tiny_model;

ClusterSim make_cluster(std::size_t n, SchedulerConfig cfg = {}, std::uint64_t seed0 = 1) {
  return ClusterSim{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                    uniform_fleet(n, core::StrategyKind::kMondeLoadBalanced, cfg, seed0)};
}

// --- Dispatch policies (no engine involved) -----------------------------------

std::vector<ReplicaSnapshot> snapshots(std::vector<std::size_t> in_flight,
                                       std::vector<std::int64_t> tokens) {
  std::vector<ReplicaSnapshot> snaps;
  for (std::size_t i = 0; i < in_flight.size(); ++i) {
    snaps.push_back({i, in_flight[i], tokens[i]});
  }
  return snaps;
}

TEST(Dispatch, RoundRobinCycles) {
  auto d = make_dispatcher(DispatchPolicy::kRoundRobin);
  const auto snaps = snapshots({9, 0, 0}, {9, 0, 0});  // load-oblivious
  EXPECT_EQ(d->pick(snaps), 0u);
  EXPECT_EQ(d->pick(snaps), 1u);
  EXPECT_EQ(d->pick(snaps), 2u);
  EXPECT_EQ(d->pick(snaps), 0u);
}

TEST(Dispatch, JoinShortestQueuePicksMinInFlight) {
  auto d = make_dispatcher(DispatchPolicy::kJoinShortestQueue);
  EXPECT_EQ(d->pick(snapshots({3, 1, 2}, {0, 900, 0})), 1u);  // ignores tokens
  EXPECT_EQ(d->pick(snapshots({2, 1, 1}, {0, 0, 0})), 1u);    // tie -> lowest index
}

TEST(Dispatch, LeastOutstandingTokensWeighsRequestSize) {
  auto d = make_dispatcher(DispatchPolicy::kLeastOutstandingTokens);
  // Replica 0 has fewer requests but owes far more tokens.
  EXPECT_EQ(d->pick(snapshots({1, 3}, {4000, 120})), 1u);
  EXPECT_EQ(d->pick(snapshots({1, 3}, {50, 120})), 0u);
}

TEST(Dispatch, PowerOfTwoIsDeterministicAndInRange) {
  const auto snaps = snapshots({4, 0, 7, 2}, {0, 0, 0, 0});
  auto a = make_dispatcher(DispatchPolicy::kPowerOfTwoChoices, 5);
  auto b = make_dispatcher(DispatchPolicy::kPowerOfTwoChoices, 5);
  for (int i = 0; i < 64; ++i) {
    const std::size_t pa = a->pick(snaps);
    EXPECT_EQ(pa, b->pick(snaps));
    EXPECT_LT(pa, snaps.size());
  }
  // Single replica: no probing needed.
  auto single = make_dispatcher(DispatchPolicy::kPowerOfTwoChoices, 5);
  EXPECT_EQ(single->pick(snapshots({42}, {42})), 0u);
}

TEST(Dispatch, EligibleSnapshotsFilterHealth) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<ReplicaSnapshot> all = snapshots({1, 2, 3, 4}, {10, 20, 30, 40});
  // All healthy: the filter is the identity (the fault-free fast path).
  EXPECT_EQ(eligible_snapshots(all, inf).size(), 4u);

  // Non-accepting replicas are excluded outright...
  all[1].accepting = false;
  auto out = eligible_snapshots(all, inf);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].replica, 2u);  // order and indices preserved
  // ...and a stale heartbeat is an exclusion too (an undetected death).
  all[2].heartbeat_age_ms = 9.0;
  out = eligible_snapshots(all, inf, /*stale_age_ms=*/6.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].replica, 0u);
  EXPECT_EQ(out[1].replica, 3u);

  // Warming replicas stay eligible: they accept and queue.
  all[3].warming = true;
  EXPECT_EQ(eligible_snapshots(all, inf, 6.0).size(), 2u);

  // The slow-EWMA cut drops outliers but never empties the set.
  std::vector<ReplicaSnapshot> fleet = snapshots({0, 0, 0}, {0, 0, 0});
  fleet[0].step_ewma_ms = 1.0;
  fleet[1].step_ewma_ms = 1.2;
  fleet[2].step_ewma_ms = 9.0;  // > 2x median
  out = eligible_snapshots(fleet, /*slow_ewma_factor=*/2.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].replica, 0u);
  EXPECT_EQ(out[1].replica, 1u);
  for (ReplicaSnapshot& s : fleet) s.step_ewma_ms = 50.0;  // all equally "slow"
  EXPECT_EQ(eligible_snapshots(fleet, 2.0).size(), 3u);

  // Every replica failed/retired: the cluster cannot place the request.
  for (ReplicaSnapshot& s : all) s.accepting = false;
  EXPECT_THROW((void)eligible_snapshots(all, inf), Error);
}

TEST(Dispatch, RejectsEmptySnapshot) {
  for (const DispatchPolicy policy : all_dispatch_policies()) {
    auto d = make_dispatcher(policy);
    EXPECT_THROW((void)d->pick({}), Error) << to_string(policy);
  }
}

// --- ClusterSim ---------------------------------------------------------------

TEST(ClusterSim, DeterministicGivenSeedForEveryPolicy) {
  const auto trace = poisson_trace(16, 60.0, small_shape(), 5);
  for (const DispatchPolicy policy : all_dispatch_policies()) {
    const auto run_once = [&] {
      ClusterSim cluster = make_cluster(3);
      const auto dispatcher = make_dispatcher(policy, 11);
      return cluster.run(trace, *dispatcher);
    };
    const ClusterReport a = run_once();
    const ClusterReport b = run_once();
    ASSERT_EQ(a.requests.size(), b.requests.size()) << a.policy;
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      EXPECT_EQ(a.requests[i].id, b.requests[i].id) << a.policy;
      EXPECT_DOUBLE_EQ(a.requests[i].ttft().ns(), b.requests[i].ttft().ns()) << a.policy;
      EXPECT_DOUBLE_EQ(a.requests[i].e2e().ns(), b.requests[i].e2e().ns()) << a.policy;
    }
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (std::size_t i = 0; i < a.replicas.size(); ++i) {
      EXPECT_EQ(a.replicas[i].dispatched, b.replicas[i].dispatched) << a.policy;
    }
    EXPECT_DOUBLE_EQ(a.makespan.ns(), b.makespan.ns()) << a.policy;
  }
}

TEST(ClusterSim, LoadAwarePoliciesBeatRoundRobinOnBurstyTrace) {
  // A heterogeneous fleet: three full-budget MD+LB replicas plus one
  // capacity-limited GPU+PM replica (a smaller per-step token budget, as a
  // smaller-memory node would have). Round-robin keeps handing the weak
  // replica a full quarter of every burst, so its queue builds across
  // bursts and dominates the fleet TTFT tail; the load-aware policies see
  // its backlog in the snapshots and route around it. (On a homogeneous
  // fleet with evenly split bursts, JSQ and round-robin make near-identical
  // choices -- the asymmetric fleet is what load-awareness is for.)
  RequestShape shape;
  shape.prompt_min = 16;
  shape.prompt_max = 64;
  shape.new_tokens_min = 4;
  shape.new_tokens_max = 24;
  const auto trace = bursty_trace(48, 8, Duration::millis(40), shape, 13);
  SchedulerConfig strong;
  strong.token_budget = 128;
  SchedulerConfig weak;
  weak.token_budget = 24;
  weak.fixed_batch = 4;
  const auto p95_ttft = [&](DispatchPolicy policy) {
    std::vector<ReplicaSpec> specs;
    specs.push_back({core::StrategyKind::kMondeLoadBalanced, strong, 1, {}});
    specs.push_back({core::StrategyKind::kMondeLoadBalanced, strong, 2, {}});
    specs.push_back({core::StrategyKind::kMondeLoadBalanced, strong, 3, {}});
    specs.push_back({core::StrategyKind::kGpuPmove, weak, 4, {}});
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(), specs};
    const auto dispatcher = make_dispatcher(policy, 17);
    return cluster.run(trace, *dispatcher).ttft_ms.p95;
  };
  const double rr = p95_ttft(DispatchPolicy::kRoundRobin);
  EXPECT_LT(p95_ttft(DispatchPolicy::kJoinShortestQueue), rr);
  EXPECT_LT(p95_ttft(DispatchPolicy::kPowerOfTwoChoices), rr);
  EXPECT_LT(p95_ttft(DispatchPolicy::kLeastOutstandingTokens), rr);
}

TEST(ClusterSim, FleetMetricsAreUnionOfReplicaMetrics) {
  const auto trace = poisson_trace(20, 80.0, small_shape(), 3);
  ClusterSim cluster = make_cluster(3);
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue);
  const ClusterReport rep = cluster.run(trace, *dispatcher);

  // No request lost or double-counted: fleet ids == trace ids exactly.
  ASSERT_EQ(rep.requests.size(), trace.size());
  std::set<std::uint64_t> fleet_ids, trace_ids;
  for (const auto& m : rep.requests) fleet_ids.insert(m.id);
  for (const auto& rq : trace) trace_ids.insert(rq.id);
  EXPECT_EQ(fleet_ids, trace_ids);

  // Fleet entries are bit-identical to the per-replica entries they union.
  std::map<std::uint64_t, RequestMetrics> by_id;
  std::size_t replica_total = 0;
  std::size_t dispatched_total = 0;
  std::uint64_t tokens_total = 0;
  for (const ReplicaReport& rr : rep.replicas) {
    replica_total += rr.serve.requests.size();
    dispatched_total += rr.dispatched;
    tokens_total += rr.serve.generated_tokens;
    for (const auto& m : rr.serve.requests) {
      EXPECT_TRUE(by_id.emplace(m.id, m).second);  // unique across replicas
    }
  }
  EXPECT_EQ(replica_total, trace.size());
  EXPECT_EQ(dispatched_total, trace.size());
  EXPECT_EQ(tokens_total, rep.generated_tokens);
  for (const auto& m : rep.requests) {
    const auto it = by_id.find(m.id);
    ASSERT_NE(it, by_id.end());
    EXPECT_DOUBLE_EQ(m.first_token.ns(), it->second.first_token.ns());
    EXPECT_DOUBLE_EQ(m.completion.ns(), it->second.completion.ns());
    EXPECT_EQ(m.generated, it->second.generated);
  }
}

TEST(ClusterSim, SingleReplicaReproducesServerSimBitIdentically) {
  // Pins the run-to-completion -> incremental-event refactor: a one-replica
  // cluster must be indistinguishable from ServerSim::run() under every
  // dispatch policy and both batching modes.
  const auto trace = poisson_trace(10, 50.0, small_shape(), 8);
  for (const BatchingMode mode : {BatchingMode::kContinuous, BatchingMode::kFixed}) {
    SchedulerConfig cfg;
    cfg.mode = mode;
    cfg.token_budget = 128;
    cfg.fixed_batch = 4;
    core::InferenceEngine single{core::SystemConfig::dac24(), tiny_model(),
                                 moe::SkewProfile::switch_like(),
                                 core::StrategyKind::kMondeLoadBalanced, /*seed=*/21};
    const ServeReport ref = ServerSim{single, cfg}.run(trace);

    for (const DispatchPolicy policy : all_dispatch_policies()) {
      ClusterSim cluster = make_cluster(1, cfg, /*seed0=*/21);
      const auto dispatcher = make_dispatcher(policy, 3);
      const ClusterReport rep = cluster.run(trace, *dispatcher);
      SCOPED_TRACE(to_string(mode) + " / " + rep.policy);
      ASSERT_EQ(rep.replicas.size(), 1u);
      const ServeReport& serve = rep.replicas[0].serve;
      ASSERT_EQ(serve.requests.size(), ref.requests.size());
      for (std::size_t i = 0; i < serve.requests.size(); ++i) {
        EXPECT_EQ(serve.requests[i].id, ref.requests[i].id);
        EXPECT_DOUBLE_EQ(serve.requests[i].admitted.ns(), ref.requests[i].admitted.ns());
        EXPECT_DOUBLE_EQ(serve.requests[i].first_token.ns(), ref.requests[i].first_token.ns());
        EXPECT_DOUBLE_EQ(serve.requests[i].completion.ns(), ref.requests[i].completion.ns());
      }
      ASSERT_EQ(serve.steps.size(), ref.steps.size());
      for (std::size_t i = 0; i < serve.steps.size(); ++i) {
        EXPECT_DOUBLE_EQ(serve.steps[i].start.ns(), ref.steps[i].start.ns());
        EXPECT_DOUBLE_EQ(serve.steps[i].end.ns(), ref.steps[i].end.ns());
      }
      EXPECT_DOUBLE_EQ(serve.makespan.ns(), ref.makespan.ns());
      EXPECT_DOUBLE_EQ(rep.makespan.ns(), ref.makespan.ns());
      EXPECT_EQ(rep.generated_tokens, ref.generated_tokens);
    }
  }
}

TEST(ClusterSim, HeterogeneousReplicasServeTheWholeTrace) {
  SchedulerConfig cfg;
  std::vector<ReplicaSpec> specs;
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, cfg, 1, {}});
  specs.push_back({core::StrategyKind::kGpuPmove, cfg, 2, {}});
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     specs};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kLeastOutstandingTokens);
  const ClusterReport rep = cluster.run(poisson_trace(10, 50.0, small_shape(), 9), *dispatcher);
  EXPECT_EQ(rep.requests.size(), 10u);
  ASSERT_EQ(rep.replicas.size(), 2u);
  EXPECT_NE(rep.replicas[0].serve.strategy, rep.replicas[1].serve.strategy);
  for (const ReplicaReport& rr : rep.replicas) {
    EXPECT_GE(rr.utilization, 0.0);
    EXPECT_LE(rr.utilization, 1.0);
  }
  EXPECT_GT(rep.tokens_per_s, 0.0);
  EXPECT_GE(rep.imbalance, 1.0);  // both replicas served something
}

// --- Failure injection --------------------------------------------------------

TEST(ClusterSim, NoFaultConfiguredRunMatchesDefaultRunBitIdentically) {
  // Carrying an explicit ClusterConfig (health checking armed, retry/warmup
  // configured) must not perturb a fault-free, autoscaler-off run: the
  // health filter is the identity when every replica is healthy. Together
  // with SingleReplicaReproducesServerSimBitIdentically this pins the PR 3
  // behavior of the elastic cluster layer.
  const auto trace = poisson_trace(14, 70.0, small_shape(), 21);
  const auto run_with = [&](ClusterConfig cfg) {
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(),
                       uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced,
                                     SchedulerConfig{}),
                       cfg};
    const auto dispatcher = make_dispatcher(DispatchPolicy::kPowerOfTwoChoices, 11);
    return cluster.run(trace, *dispatcher);
  };
  ClusterConfig tuned;
  tuned.health.heartbeat_interval = Duration::millis(1);
  tuned.health.heartbeat_timeout = Duration::millis(3);
  tuned.retry_timeout = Duration::millis(7);
  tuned.warmup = Duration::millis(30);
  const ClusterReport a = run_with(ClusterConfig{});
  const ClusterReport b = run_with(tuned);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_DOUBLE_EQ(a.requests[i].first_token.ns(), b.requests[i].first_token.ns());
    EXPECT_DOUBLE_EQ(a.requests[i].completion.ns(), b.requests[i].completion.ns());
  }
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].dispatched, b.replicas[i].dispatched);
    EXPECT_DOUBLE_EQ(a.replicas[i].utilization, b.replicas[i].utilization);
  }
  EXPECT_DOUBLE_EQ(a.makespan.ns(), b.makespan.ns());
  EXPECT_TRUE(a.events.empty());
  EXPECT_TRUE(b.events.empty());
  EXPECT_EQ(a.retries, 0u);
}

TEST(ClusterSim, FailStopRequestsAllCompleteViaRetry) {
  // Replica 1 dies mid-trace. The dispatcher keeps feeding it until the
  // heartbeat monitor declares it dead; everything stranded there (queued,
  // mid-decode, or dispatched into the detection window) must be harvested
  // and complete elsewhere, with the retry delay visible in the metrics.
  const auto trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  ClusterConfig cfg;
  cfg.health.heartbeat_interval = Duration::millis(2);
  cfg.health.heartbeat_timeout = Duration::millis(6);
  cfg.retry_timeout = Duration::millis(2);
  auto specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  specs[1].fault.fail_at = Duration::millis(30);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     specs, cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
  const ClusterReport rep = cluster.run(trace, *dispatcher);

  // Nothing lost: the fleet union is exactly the trace, once each.
  ASSERT_EQ(rep.requests.size(), trace.size());
  std::set<std::uint64_t> ids;
  for (const auto& m : rep.requests) ids.insert(m.id);
  EXPECT_EQ(ids.size(), trace.size());

  ASSERT_EQ(rep.replicas.size(), 3u);
  const ReplicaReport& dead = rep.replicas[1];
  EXPECT_TRUE(dead.failed);
  EXPECT_DOUBLE_EQ(dead.alive_until.ms(), 30.0);
  // The dead replica's report covers only requests it completed in time...
  for (const auto& m : dead.serve.requests) {
    EXPECT_LE(m.completion, specs[1].fault.fail_at);
  }
  // ...and its clock froze at death.
  EXPECT_LE(dead.serve.makespan, specs[1].fault.fail_at);

  // Detection lags death by the heartbeat model; retries land after the
  // retry timeout and their completions carry the full failure cost.
  const Duration detect = failure_detection_time(specs[1].fault.fail_at, cfg.health);
  EXPECT_GT(detect, specs[1].fault.fail_at);
  EXPECT_GT(rep.retries, 0u);
  bool saw_fail = false, saw_detect = false;
  std::size_t retry_events = 0;
  for (const ClusterEvent& ev : rep.events) {
    switch (ev.kind) {
      case ClusterEvent::Kind::kFailStop:
        saw_fail = true;
        EXPECT_DOUBLE_EQ(ev.time.ms(), 30.0);
        break;
      case ClusterEvent::Kind::kFailureDetected:
        saw_detect = true;
        EXPECT_DOUBLE_EQ(ev.time.ns(), detect.ns());
        break;
      case ClusterEvent::Kind::kRetry:
        ++retry_events;
        EXPECT_DOUBLE_EQ(ev.time.ns(), (detect + cfg.retry_timeout).ns());
        EXPECT_NE(ev.replica, 1u);  // never back onto the dead replica
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_detect);
  EXPECT_EQ(retry_events, rep.retries);
  // Retried requests restarted elsewhere after detection + timeout, and the
  // fleet metrics measure them from their original arrival.
  std::size_t retried = 0;
  for (const auto& m : rep.requests) {
    if (m.attempt == 0) continue;
    ++retried;
    EXPECT_GT(m.first_token, detect + cfg.retry_timeout);
    // Fleet metrics are re-based to the ORIGINAL arrival (which necessarily
    // precedes the failure), not the retry instant (which follows it).
    EXPECT_LT(m.arrival, specs[1].fault.fail_at);
  }
  EXPECT_EQ(retried, rep.retries);
}

TEST(ClusterSim, FailStopAfterLastArrivalStillRecoversStrandedWork) {
  // The failure (and therefore its detection) can lie beyond the last
  // arrival: the cluster must still process the detection, retry, and
  // complete everything rather than hanging the stranded tail.
  const auto trace = closed_loop_trace(10, small_shape(), 9);
  ClusterConfig cfg;
  auto specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  specs[0].fault.fail_at = Duration::millis(4);  // mid-backlog, after t=0 arrivals
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     specs, cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kRoundRobin);
  const ClusterReport rep = cluster.run(trace, *dispatcher);
  ASSERT_EQ(rep.requests.size(), trace.size());
  EXPECT_TRUE(rep.replicas[0].failed);
  EXPECT_GT(rep.retries, 0u);
}

TEST(ClusterSim, SlowdownStretchesStepsAndEwmaFilterRoutesAround) {
  // Server-level: a 3x slow-down covering the whole run must dilate every
  // step span by exactly the factor relative to an identical fault-free
  // twin. A closed-loop trace makes admission time-independent, so the two
  // runs execute the same step sequence and steps correspond one to one.
  const auto trace = closed_loop_trace(8, small_shape(), 8);
  SchedulerConfig sched;
  sched.token_budget = 64;  // force several steps
  FaultSpec slow;
  slow.slow_from = Duration::zero();
  slow.slow_until = Duration::infinite();
  slow.slow_factor = 3.0;
  core::InferenceEngine ref_engine{core::SystemConfig::dac24(), tiny_model(),
                                   moe::SkewProfile::switch_like(),
                                   core::StrategyKind::kMondeLoadBalanced, 5};
  const ServeReport ref = ServerSim{ref_engine, sched}.run(trace);
  core::InferenceEngine slow_engine{core::SystemConfig::dac24(), tiny_model(),
                                    moe::SkewProfile::switch_like(),
                                    core::StrategyKind::kMondeLoadBalanced, 5};
  const ServeReport degraded =
      ServerSim{slow_engine, sched, Duration::zero(), slow}.run(trace);
  ASSERT_EQ(degraded.steps.size(), ref.steps.size());
  ASSERT_GT(ref.steps.size(), 1u);
  for (std::size_t i = 0; i < ref.steps.size(); ++i) {
    const double ref_span = (ref.steps[i].end - ref.steps[i].start).ns();
    const double slow_span = (degraded.steps[i].end - degraded.steps[i].start).ns();
    EXPECT_NEAR(slow_span, 3.0 * ref_span, 1e-3) << "step " << i;
  }
  EXPECT_NEAR(degraded.makespan.ns(), 3.0 * ref.makespan.ns(), 1.0);

  // Cluster-level: with the slow-EWMA filter armed, the degraded replica
  // receives fewer requests than with health-oblivious dispatch.
  const auto cluster_trace = poisson_trace(24, 120.0, small_shape(), 12);
  const auto dispatched_to_slow = [&](double slow_ewma_factor) {
    ClusterConfig cfg;
    cfg.health.slow_ewma_factor = slow_ewma_factor;
    auto specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
    specs[2].fault.slow_from = Duration::zero();
    specs[2].fault.slow_until = Duration::infinite();
    specs[2].fault.slow_factor = 8.0;
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(), specs, cfg};
    const auto dispatcher = make_dispatcher(DispatchPolicy::kRoundRobin);
    const ClusterReport rep = cluster.run(cluster_trace, *dispatcher);
    return rep.replicas[2].dispatched;
  };
  const std::size_t oblivious = dispatched_to_slow(
      std::numeric_limits<double>::infinity());
  const std::size_t aware = dispatched_to_slow(2.0);
  EXPECT_LT(aware, oblivious);
}

TEST(ClusterSim, HeartbeatModelIsConsistent) {
  HealthConfig cfg;
  cfg.heartbeat_interval = Duration::millis(2);
  cfg.heartbeat_timeout = Duration::millis(6);
  // A live replica's heartbeat age never exceeds one interval.
  EXPECT_DOUBLE_EQ(
      last_ok_heartbeat(Duration::millis(7), Duration::infinite(), cfg).ms(), 6.0);
  // A replica dying at 9 ms last answered the 8 ms poll...
  EXPECT_DOUBLE_EQ(
      last_ok_heartbeat(Duration::millis(20), Duration::millis(9), cfg).ms(), 8.0);
  // ...a replica dying exactly on a poll instant missed that poll...
  EXPECT_DOUBLE_EQ(
      last_ok_heartbeat(Duration::millis(20), Duration::millis(8), cfg).ms(), 6.0);
  // ...and detection fires when the age crosses the timeout.
  EXPECT_DOUBLE_EQ(failure_detection_time(Duration::millis(9), cfg).ms(), 14.0);
  EXPECT_GE(failure_detection_time(Duration::millis(1), cfg), Duration::millis(1));
}

TEST(ClusterSim, RejectsBadConfigurations) {
  SchedulerConfig cfg;
  EXPECT_THROW((void)uniform_fleet(0, core::StrategyKind::kMondeAmove, cfg), Error);
  ClusterSim cluster = make_cluster(2);
  const auto dispatcher = make_dispatcher(DispatchPolicy::kRoundRobin);
  EXPECT_THROW((void)cluster.run({}, *dispatcher), Error);  // empty trace
}

// --- Prefix cache, partial-progress retry, and migration ----------------------

RequestShape prefix_shape(double fraction = 1.0) {
  RequestShape s = small_shape();
  s.prefix_groups = 2;
  s.shared_fraction = fraction;
  s.shared_prefix_len = 12;
  return s;
}

/// Cheap, near-instant state transfers so resume/migration timing effects
/// stay dominated by the saved compute, not the link.
PrefixCacheConfig enabled_cache() {
  PrefixCacheConfig cache;
  cache.enabled = true;
  cache.kv_bytes_per_token = Bytes{16};
  cache.migration_bw = Bandwidth::gbps(100.0);
  return cache;
}

TEST(ClusterSim, CacheDisabledConfigIsBitIdenticalToDefault) {
  // The acceptance pin, cluster level: a disabled cache -- whatever its
  // other knobs say, on a trace that carries shared-prefix ids -- must
  // reproduce the default (cache-less) cluster bit for bit.
  const auto trace = poisson_trace(14, 70.0, prefix_shape(0.75), 21);
  const auto run_with = [&](ClusterConfig cfg) {
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(),
                       uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced,
                                     SchedulerConfig{}),
                       cfg};
    const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 11);
    return cluster.run(trace, *dispatcher);
  };
  ClusterConfig off;
  off.cache.enabled = false;
  off.cache.capacity_tokens = 1;       // junk knobs must never be read
  off.cache.survive_failstop = true;   // policy flags are inert when disabled
  off.cache.migrate_on_retire = true;
  const ClusterReport a = run_with(ClusterConfig{});
  const ClusterReport b = run_with(off);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_DOUBLE_EQ(a.requests[i].first_token.ns(), b.requests[i].first_token.ns());
    EXPECT_DOUBLE_EQ(a.requests[i].completion.ns(), b.requests[i].completion.ns());
  }
  EXPECT_DOUBLE_EQ(a.makespan.ns(), b.makespan.ns());
  EXPECT_EQ(b.cached_prefill_tokens, 0);
  EXPECT_EQ(b.migrations, 0u);
}

TEST(ClusterSim, SharedPrefixCacheSavesPrefillFleetWide) {
  // Closed-loop keeps every replica busy end to end, so the fleet makespan
  // directly reflects the prefill work the caches skipped.
  const auto trace = closed_loop_trace(20, prefix_shape(), 5);
  const auto run_with = [&](ClusterConfig cfg) {
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(),
                       uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced,
                                     SchedulerConfig{}),
                       cfg};
    // Round-robin keeps the request->replica assignment identical across
    // the two runs, so the comparison isolates the cache itself.
    const auto dispatcher = make_dispatcher(DispatchPolicy::kRoundRobin);
    return cluster.run(trace, *dispatcher);
  };
  ClusterConfig on;
  on.cache = enabled_cache();
  const ClusterReport off_rep = run_with(ClusterConfig{});
  const ClusterReport on_rep = run_with(on);
  EXPECT_GT(on_rep.cached_prefill_tokens, 0);
  EXPECT_EQ(off_rep.cached_prefill_tokens, 0);
  ASSERT_EQ(on_rep.requests.size(), trace.size());
  // Skipped prefill is simulated time the fleet genuinely never spends.
  EXPECT_LT(on_rep.makespan, off_rep.makespan);
  std::uint64_t hits = 0;
  for (const ReplicaReport& rr : on_rep.replicas) hits += rr.serve.cache.hits;
  EXPECT_GT(hits, 0u);
}

TEST(ClusterSim, SurvivingCacheResumesStrandedWorkAndCutsTheTail) {
  // Replica 1 of 3 dies mid-trace. Lost-cache mode retries from scratch;
  // surviving-cache mode resumes from the checkpoint (at a near-zero
  // modelled transfer cost), so every retried request finishes no later and
  // the E2E tail shrinks.
  const auto trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  const auto run_with = [&](bool survive) {
    ClusterConfig cfg;
    cfg.health.heartbeat_interval = Duration::millis(2);
    cfg.health.heartbeat_timeout = Duration::millis(6);
    cfg.retry_timeout = Duration::millis(2);
    cfg.cache = enabled_cache();
    cfg.cache.survive_failstop = survive;
    auto specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
    specs[1].fault.fail_at = Duration::millis(30);
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(), specs, cfg};
    const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
    return cluster.run(trace, *dispatcher);
  };
  const ClusterReport lost = run_with(false);
  const ClusterReport kept = run_with(true);
  ASSERT_EQ(lost.requests.size(), trace.size());
  ASSERT_EQ(kept.requests.size(), trace.size());
  EXPECT_GT(lost.retries, 0u);
  EXPECT_EQ(kept.retries, lost.retries);  // identical pre-failure behavior

  std::map<std::uint64_t, const RequestMetrics*> lost_by_id;
  for (const RequestMetrics& m : lost.requests) lost_by_id.emplace(m.id, &m);
  bool any_resumed = false;
  for (const RequestMetrics& m : kept.requests) {
    if (m.attempt == 0) continue;
    const RequestMetrics& twin = *lost_by_id.at(m.id);
    EXPECT_GT(twin.attempt, 0u) << "retry sets must match";
    // In lost-cache mode every retry restarts from scratch...
    EXPECT_EQ(twin.resumed_tokens, 0);
    // ...while a surviving cache resumes whatever was checkpointed. A
    // resumed retry skips work, so it never finishes later (the tiny
    // transfer span is absorbed by the next step boundary).
    EXPECT_LE(m.completion.ns(), twin.completion.ns() + 1.0);
    if (m.resumed_tokens > 0 || m.saved_tokens > 0) any_resumed = true;
    if (m.resumed_tokens > 0) {
      // TTFT of a resumed request points at the ORIGINAL first token,
      // which predates the failure.
      EXPECT_LT(m.first_token, Duration::millis(30));
    }
  }
  EXPECT_TRUE(any_resumed);
  EXPECT_GT(kept.cached_prefill_tokens, 0);
  EXPECT_LT(kept.e2e_ms.p99, lost.e2e_ms.p99);
}

TEST(ClusterSim, ScaleDownMigrationMovesResidentStateAndReleasesCapacity) {
  // A front-loaded burst, then silence: the autoscaler wants to shrink the
  // fleet while work is still in flight. With migration enabled the retiree
  // stops at its step boundary and hands its unfinished requests (with
  // resident state) to the survivor instead of draining them itself.
  const auto trace = bursty_trace(16, 16, Duration::millis(1), small_shape(), 3);
  const auto run_with = [&](bool migrate) {
    ClusterConfig cfg;
    cfg.autoscale_period = Duration::millis(2);
    cfg.cache = enabled_cache();
    cfg.cache.migrate_on_retire = migrate;
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(),
                       uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced,
                                     SchedulerConfig{}),
                       cfg};
    const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 17);
    AutoscaleConfig as;
    as.min_replicas = 1;
    as.max_replicas = 2;
    as.high_tokens_per_replica = 1 << 20;  // never scale up...
    as.low_tokens_per_replica = 1 << 19;   // ...always want to scale down
    const auto autoscaler = make_queue_pressure_autoscaler(as);
    return cluster.run(trace, *dispatcher, autoscaler.get());
  };
  const ClusterReport moved = run_with(true);
  const ClusterReport drained = run_with(false);
  ASSERT_EQ(moved.requests.size(), trace.size());
  ASSERT_EQ(drained.requests.size(), trace.size());
  EXPECT_GT(moved.migrations, 0u);
  EXPECT_EQ(drained.migrations, 0u);
  bool saw_migrate_event = false;
  for (const ClusterEvent& ev : moved.events) {
    saw_migrate_event = saw_migrate_event || ev.kind == ClusterEvent::Kind::kMigrate;
  }
  EXPECT_TRUE(saw_migrate_event);
  bool any_carried_state = false;
  for (const RequestMetrics& m : moved.requests) {
    if (m.attempt > 0 && (m.saved_tokens > 0 || m.resumed_tokens > 0)) {
      any_carried_state = true;
    }
  }
  EXPECT_TRUE(any_carried_state);
  // Migration releases the retiree at its step boundary instead of billing
  // its whole self-drain: the fleet pays fewer replica-seconds.
  EXPECT_LT(moved.replica_seconds, drained.replica_seconds);
  for (const ReplicaReport& rr : moved.replicas) {
    if (rr.retired) {
      EXPECT_LT(rr.alive_until, moved.makespan) << rr.name;
    }
  }
}

TEST(ClusterSim, EvacuatedReplicaLaterFailStopIsHarmless) {
  // The retiree is evacuated at the first autoscale tick; its injected
  // fail-stop fires much later, on an already-empty server. The heartbeat
  // monitor must tolerate the evacuated replica (there is nothing left to
  // harvest) instead of aborting the run.
  const auto trace = bursty_trace(16, 16, Duration::millis(1), small_shape(), 3);
  ClusterConfig cfg;
  cfg.autoscale_period = Duration::millis(2);
  cfg.cache = enabled_cache();
  cfg.cache.migrate_on_retire = true;
  // The weak replica 1 always owes more, so replica 0 -- the faulty one --
  // is deterministically the scale-down victim.
  SchedulerConfig weak;
  weak.token_budget = 32;
  weak.fixed_batch = 4;
  std::vector<ReplicaSpec> specs;
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{}, 1, {}});
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, weak, 2, {}});
  specs[0].fault.fail_at = Duration::millis(60);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     specs, cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 17);
  AutoscaleConfig as;
  as.min_replicas = 1;
  as.max_replicas = 2;
  as.high_tokens_per_replica = 1 << 20;
  as.low_tokens_per_replica = 1 << 19;  // always below: shrink when possible
  const auto autoscaler = make_queue_pressure_autoscaler(as);
  const ClusterReport rep = cluster.run(trace, *dispatcher, autoscaler.get());
  ASSERT_EQ(rep.requests.size(), trace.size());
  EXPECT_GT(rep.migrations, 0u);
  const ReplicaReport& victim = rep.replicas[0];
  EXPECT_TRUE(victim.retired);
  EXPECT_TRUE(victim.failed);  // died long after its work moved away
  // The death of an empty, evacuated replica strands nothing.
  std::size_t post_death_retries = 0;
  for (const ClusterEvent& ev : rep.events) {
    if (ev.kind == ClusterEvent::Kind::kRetry) ++post_death_retries;
  }
  EXPECT_EQ(post_death_retries, 0u);
}

TEST(ClusterSim, DoubleFailureRebasesMetricsAcrossAttempts) {
  // The retry replica itself dies: stranded requests go around twice
  // (attempt 2 lands on an autoscaled replacement), and fleet metrics stay
  // keyed to the original arrival through both failures.
  const auto trace = closed_loop_trace(8, small_shape(), 9);
  ClusterConfig cfg;
  cfg.health.heartbeat_interval = Duration::millis(1);
  cfg.health.heartbeat_timeout = Duration::millis(2);
  cfg.retry_timeout = Duration::millis(3);
  cfg.autoscale_period = Duration::millis(1);
  cfg.warmup = Duration::millis(1) / 2.0;
  auto specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  specs[0].fault.fail_at = Duration::millis(2);
  specs[1].fault.fail_at = Duration::millis(8);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     specs, cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
  AutoscaleConfig as;
  as.min_replicas = 1;
  as.max_replicas = 4;
  as.high_tokens_per_replica = 1 << 20;  // replace dead capacity, nothing more
  as.low_tokens_per_replica = 1;
  const auto autoscaler = make_queue_pressure_autoscaler(as);
  const ClusterReport rep = cluster.run(trace, *dispatcher, autoscaler.get());

  ASSERT_EQ(rep.requests.size(), trace.size());
  const Duration second_detect =
      failure_detection_time(specs[1].fault.fail_at, cfg.health);
  std::size_t twice_retried = 0;
  for (const RequestMetrics& m : rep.requests) {
    if (m.attempt < 2) continue;
    ++twice_retried;
    // Re-based to the original (t = 0) arrival, so the E2E spans BOTH
    // failures and both retry timeouts.
    EXPECT_DOUBLE_EQ(m.arrival.ns(), 0.0);
    EXPECT_GT(m.completion, second_detect + cfg.retry_timeout);
    EXPECT_GT(m.e2e(), second_detect + cfg.retry_timeout);  // arrival re-based to 0
  }
  EXPECT_GT(twice_retried, 0u);
  std::size_t detections = 0;
  for (const ClusterEvent& ev : rep.events) {
    if (ev.kind == ClusterEvent::Kind::kFailureDetected) ++detections;
  }
  EXPECT_EQ(detections, 2u);
  EXPECT_TRUE(rep.replicas[0].failed);
  EXPECT_TRUE(rep.replicas[1].failed);
  ASSERT_GT(rep.replicas.size(), 2u);  // the autoscaler replaced capacity
}

}  // namespace
}  // namespace monde::serve
