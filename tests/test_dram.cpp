// Unit tests for the cycle-level DRAM simulator: address mapping, timing
// invariants, scheduling quality, refresh, and bandwidth scaling.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dram/dram_system.hpp"

namespace monde::dram {
namespace {

Spec small_spec() {
  // A small topology keeps unit tests fast while exercising all fields.
  Spec s = Spec::monde_lpddr5x_8533();
  s.org.channels = 2;
  s.org.ranks = 2;
  s.org.rows = 256;
  return s;
}

TEST(Spec, MondeConfigMatchesPaper) {
  const Spec s = Spec::monde_lpddr5x_8533();
  EXPECT_EQ(s.org.channels, 8);
  // Table 2: 512 GB capacity, ~512 GB/s bandwidth, 68 GB/s per module.
  EXPECT_NEAR(s.org.total_capacity().as_gib(), 512.0, 1e-9);
  EXPECT_NEAR(s.channel_peak_bandwidth().as_gbps(), 68.3, 0.2);
  EXPECT_NEAR(s.total_peak_bandwidth().as_gbps(), 546.0, 2.0);
  EXPECT_NO_THROW(s.validate());
}

TEST(Spec, ValidateRejectsBadFields) {
  Spec s = Spec::monde_lpddr5x_8533();
  s.org.channels = 0;
  EXPECT_THROW(s.validate(), Error);
  s = Spec::monde_lpddr5x_8533();
  s.org.rows = 1000;  // not a power of two
  EXPECT_THROW(s.validate(), Error);
  s = Spec::monde_lpddr5x_8533();
  s.data_rate_mtps = -1;
  EXPECT_THROW(s.validate(), Error);
}

TEST(Spec, BandwidthScalingPreservesWallClockTimings) {
  const Spec base = Spec::monde_lpddr5x_8533();
  const Spec fast = base.with_bandwidth_scale(2.0);
  EXPECT_NEAR(fast.total_peak_bandwidth().as_gbps(),
              2.0 * base.total_peak_bandwidth().as_gbps(), 1.0);
  // tRCD in nanoseconds stays within one (new) clock period of the original.
  const double base_ns = base.timing.nRCD * base.clock_period().ns();
  const double fast_ns = fast.timing.nRCD * fast.clock_period().ns();
  EXPECT_NEAR(fast_ns, base_ns, fast.clock_period().ns() + 1e-9);
  EXPECT_THROW(base.with_bandwidth_scale(0.0), Error);
}

TEST(AddressMapper, RoundTripsRandomAddresses) {
  const Spec s = Spec::monde_lpddr5x_8533();
  const AddressMapper mapper{s};
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t addr =
        (rng.next_u64() % mapper.capacity()) & ~std::uint64_t{0x7F};  // block aligned
    const Address a = mapper.decompose(addr);
    EXPECT_EQ(mapper.compose(a), addr);
  }
}

TEST(AddressMapper, FieldsWithinBounds) {
  const Spec s = Spec::monde_lpddr5x_8533();
  const AddressMapper mapper{s};
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const Address a = mapper.decompose(rng.next_u64() % mapper.capacity());
    EXPECT_GE(a.channel, 0);
    EXPECT_LT(a.channel, s.org.channels);
    EXPECT_LT(a.rank, s.org.ranks);
    EXPECT_LT(a.bankgroup, s.org.bankgroups);
    EXPECT_LT(a.bank, s.org.banks_per_group);
    EXPECT_LT(a.row, s.org.rows);
    EXPECT_LT(a.column, s.org.columns);
  }
}

TEST(AddressMapper, ChannelIsFastestVaryingField) {
  // ro-ba-bg-ra-co-ch order: consecutive blocks hit consecutive channels.
  const Spec s = Spec::monde_lpddr5x_8533();
  const AddressMapper mapper{s};
  const auto block = static_cast<std::uint64_t>(s.org.access_bytes);
  for (int i = 0; i < s.org.channels; ++i) {
    EXPECT_EQ(mapper.decompose(static_cast<std::uint64_t>(i) * block).channel, i);
  }
  // After one sweep of channels, the column advances.
  const Address a = mapper.decompose(static_cast<std::uint64_t>(s.org.channels) * block);
  EXPECT_EQ(a.channel, 0);
  EXPECT_EQ(a.column, 1);
}

TEST(AddressMapper, RejectsOutOfRange) {
  const Spec s = small_spec();
  const AddressMapper mapper{s};
  EXPECT_THROW((void)mapper.decompose(mapper.capacity()), Error);
  Address a;
  a.row = s.org.rows;  // one past the end
  EXPECT_THROW((void)mapper.compose(a), Error);
}

// Single-read latency should be ACT + RCD + CL + BL within a small slack.
TEST(DramSystem, ColdReadLatency) {
  const Spec s = small_spec();
  DramSystem sys{s};
  Duration done = Duration::zero();
  Request req;
  req.addr = 0;
  req.type = Request::Type::kRead;
  req.on_complete = [&](const Request&, Duration t) { done = t; };
  sys.enqueue(std::move(req));
  sys.run_until_idle();
  const double expected_cycles = s.timing.nRCD + s.timing.nCL + s.timing.nBL;
  const double actual_cycles = done.ns() / s.clock_period().ns();
  EXPECT_GE(actual_cycles, expected_cycles);
  EXPECT_LE(actual_cycles, expected_cycles + 4);  // scheduling slack
}

TEST(DramSystem, RowHitFasterThanRowMiss) {
  const Spec s = small_spec();
  const AddressMapper mapper{s};

  auto measure_pair = [&](std::uint64_t addr2) {
    DramSystem sys{s};
    Duration t1, t2;
    Request r1;
    r1.addr = 0;
    r1.type = Request::Type::kRead;
    r1.on_complete = [&](const Request&, Duration t) { t1 = t; };
    sys.enqueue(std::move(r1));
    sys.run_until_idle();
    Request r2;
    r2.addr = addr2;
    r2.type = Request::Type::kRead;
    r2.on_complete = [&](const Request&, Duration t) { t2 = t; };
    sys.enqueue(std::move(r2));
    sys.run_until_idle();
    return (t2 - t1).ns();
  };

  // Same row, next column in the same channel -> hit.
  Address hit = mapper.decompose(0);
  hit.column = 1;
  // Same bank, different row -> conflict (PRE + ACT).
  Address miss = mapper.decompose(0);
  miss.row = 1;
  const double hit_ns = measure_pair(mapper.compose(hit));
  const double miss_ns = measure_pair(mapper.compose(miss));
  EXPECT_LT(hit_ns, miss_ns);
  // Conflict pays at least tRP + tRCD more than a hit.
  const double penalty = (s.timing.nRP + s.timing.nRCD) * s.clock_period().ns();
  EXPECT_GE(miss_ns - hit_ns, penalty * 0.8);
}

TEST(DramSystem, StreamingReachesHighBandwidth) {
  const Spec s = Spec::monde_lpddr5x_8533();
  DramSystem sys{s};
  const auto block = static_cast<std::uint64_t>(s.org.access_bytes);
  const std::uint64_t total = 40000;
  std::uint64_t next = 0;
  std::uint64_t completed = 0;
  while (completed < total) {
    while (next < total && sys.can_accept(next * block)) {
      Request r;
      r.addr = next * block;
      r.type = Request::Type::kRead;
      r.on_complete = [&](const Request&, Duration) { ++completed; };
      sys.enqueue(std::move(r));
      ++next;
    }
    sys.tick();
  }
  const double achieved = sys.achieved_bandwidth().as_gbps();
  EXPECT_GT(achieved, 0.85 * s.total_peak_bandwidth().as_gbps());
  EXPECT_GT(sys.stats().row_hit_rate(), 0.9);
}

TEST(DramSystem, RefreshesAreIssued) {
  const Spec s = small_spec();
  DramSystem sys{s};
  // Run for > several tREFI with sporadic traffic.
  const auto block = static_cast<std::uint64_t>(s.org.access_bytes);
  for (int epoch = 0; epoch < 10; ++epoch) {
    Request r;
    r.addr = static_cast<std::uint64_t>(epoch) * block;
    r.type = Request::Type::kRead;
    sys.enqueue(std::move(r));
    for (int i = 0; i < s.timing.nREFI; ++i) sys.tick();
  }
  sys.run_until_idle();
  EXPECT_GT(sys.stats().refreshes, 0u);
}

TEST(DramSystem, WritesCompleteAndDrain) {
  const Spec s = small_spec();
  DramSystem sys{s};
  const auto block = static_cast<std::uint64_t>(s.org.access_bytes);
  std::uint64_t completed = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    while (!sys.can_accept(i * block)) sys.tick();
    Request r;
    r.addr = i * block;
    r.type = Request::Type::kWrite;
    r.on_complete = [&](const Request&, Duration) { ++completed; };
    sys.enqueue(std::move(r));
  }
  sys.run_until_idle();
  EXPECT_EQ(completed, 100u);
  EXPECT_EQ(sys.stats().writes_completed, 100u);
  EXPECT_TRUE(sys.idle());
}

TEST(DramSystem, MixedReadWriteConserved) {
  const Spec s = small_spec();
  DramSystem sys{s};
  Rng rng{7};
  const auto block = static_cast<std::uint64_t>(s.org.access_bytes);
  const std::uint64_t blocks = s.org.total_capacity().count() / block;
  std::uint64_t completed = 0;
  const std::uint64_t total = 2000;
  std::uint64_t issued = 0;
  while (completed < total) {
    while (issued < total) {
      const std::uint64_t addr = (rng.next_u64() % blocks) * block;
      if (!sys.can_accept(addr)) break;
      Request r;
      r.addr = addr;
      r.type = (rng.next_u64() & 1) ? Request::Type::kWrite : Request::Type::kRead;
      r.on_complete = [&](const Request&, Duration) { ++completed; };
      sys.enqueue(std::move(r));
      ++issued;
    }
    sys.tick();
  }
  EXPECT_EQ(sys.stats().reads_completed + sys.stats().writes_completed, total);
}

TEST(DramSystem, EnqueueWithoutAdmissionCheckThrows) {
  const Spec s = small_spec();
  DramSystem sys{s};
  // Saturate one channel's read queue.
  std::uint64_t i = 0;
  const auto chan_stride =
      static_cast<std::uint64_t>(s.org.access_bytes) * static_cast<std::uint64_t>(s.org.channels);
  while (sys.can_accept(i * chan_stride)) {
    Request r;
    r.addr = i * chan_stride;  // always channel 0
    r.type = Request::Type::kRead;
    sys.enqueue(std::move(r));
    ++i;
  }
  Request r;
  r.addr = i * chan_stride;
  r.type = Request::Type::kRead;
  EXPECT_THROW(sys.enqueue(std::move(r)), Error);
}

// Property sweep: achieved bandwidth scales with the data-rate knob
// (Figure 7(b)'s 0.5x / 1x / 2x memory configurations).
class BandwidthScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthScaleTest, StreamingTracksScale) {
  const double scale = GetParam();
  const Spec s = Spec::monde_lpddr5x_8533().with_bandwidth_scale(scale);
  DramSystem sys{s};
  const auto block = static_cast<std::uint64_t>(s.org.access_bytes);
  const std::uint64_t total = 20000;
  std::uint64_t next = 0, completed = 0;
  while (completed < total) {
    while (next < total && sys.can_accept(next * block)) {
      Request r;
      r.addr = next * block;
      r.type = Request::Type::kRead;
      r.on_complete = [&](const Request&, Duration) { ++completed; };
      sys.enqueue(std::move(r));
      ++next;
    }
    sys.tick();
  }
  EXPECT_GT(sys.achieved_bandwidth().as_gbps(), 0.8 * s.total_peak_bandwidth().as_gbps());
}

INSTANTIATE_TEST_SUITE_P(Scales, BandwidthScaleTest, ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
}  // namespace monde::dram
