// Unit tests for link timing models and the 64-B NDP instruction codec.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "interconnect/instruction.hpp"
#include "interconnect/link.hpp"

namespace monde::interconnect {
namespace {

TEST(LinkSpec, Gen4EffectiveBandwidth) {
  const LinkSpec l = LinkSpec::pcie_gen4_x16();
  EXPECT_NEAR(l.raw_bandwidth.as_gbps(), 31.5, 0.01);
  EXPECT_NEAR(l.effective_bandwidth().as_gbps(), 31.5 * 0.914, 0.1);
}

TEST(LinkSpec, GenerationsOrdered) {
  EXPECT_LT(LinkSpec::pcie_gen3_x16().raw_bandwidth.as_gbps(),
            LinkSpec::pcie_gen4_x16().raw_bandwidth.as_gbps());
  EXPECT_LT(LinkSpec::pcie_gen4_x16().raw_bandwidth.as_gbps(),
            LinkSpec::pcie_gen5_x16().raw_bandwidth.as_gbps());
}

TEST(LinkSpec, TransferTimeComposition) {
  const LinkSpec l = LinkSpec::pcie_gen4_x16();
  const Bytes payload = Bytes::mib(64);
  const Duration t = l.transfer_time(payload);
  const Duration streaming = transfer_time(payload, l.effective_bandwidth());
  EXPECT_NEAR(t.us(), (l.dma_setup + l.propagation + streaming).us(), 1e-9);
  // Monotone in payload.
  EXPECT_LT(l.transfer_time(Bytes::mib(1)), l.transfer_time(Bytes::mib(2)));
}

TEST(LinkSpec, SmallMessageSkipsDmaSetup) {
  const LinkSpec l = LinkSpec::cxl_mem_gen4_x16();
  EXPECT_LT(l.message_time(Bytes{64}), l.transfer_time(Bytes{64}));
  // A 64-B CXL message is sub-microsecond.
  EXPECT_LT(l.message_time(Bytes{64}).us(), 1.0);
}

TEST(LinkSpec, CxlFlitEfficiency) {
  const LinkSpec l = LinkSpec::cxl_mem_gen4_x16();
  EXPECT_NEAR(l.protocol_efficiency, 64.0 / 68.0, 1e-9);
}

TEST(LinkSpec, ScaledBandwidthOnly) {
  const LinkSpec base = LinkSpec::pcie_gen4_x16();
  const LinkSpec twice = base.scaled(2.0);
  EXPECT_NEAR(twice.raw_bandwidth.as_gbps(), 2.0 * base.raw_bandwidth.as_gbps(), 1e-9);
  EXPECT_EQ(twice.propagation, base.propagation);
  EXPECT_EQ(twice.dma_setup, base.dma_setup);
}

// --- Instruction codec -------------------------------------------------------

NdpInstruction sample_instruction() {
  NdpInstruction i;
  i.opcode = Opcode::kGemmRelu;
  i.act_in = {0x1122334455667788ULL, 0x1000};
  i.weight = {0x99aabbccddeeff00ULL, 0x2000000};
  i.act_out = {0xdeadbeef12345678ULL, 0x1000};
  i.is_ndp = true;
  i.act_fn = ActFn::kRelu;
  i.expert_id = 127;
  i.layer_id = 11;
  i.device_id = 3;
  i.token_count = 12345;
  i.kernel_seq = 999;
  return i;
}

TEST(Instruction, EncodeDecodeRoundTrip) {
  const NdpInstruction original = sample_instruction();
  const NdpInstruction decoded = decode(encode(original));
  EXPECT_EQ(decoded, original);
}

TEST(Instruction, RoundTripFieldExtremes) {
  NdpInstruction i;
  i.opcode = Opcode::kGemm;
  i.act_in = {~std::uint64_t{0}, ~std::uint64_t{0}};
  i.weight = {0, 0};
  i.act_out = {1, 1};
  i.expert_id = 0xFFFF;
  i.layer_id = 0xFFFF;
  i.device_id = 0xFF;
  i.token_count = (1u << 20) - 1;
  i.kernel_seq = 0xFFFF;
  i.is_ndp = false;
  EXPECT_EQ(decode(encode(i)), i);
}

TEST(Instruction, RandomizedRoundTrip) {
  Rng rng{77};
  for (int trial = 0; trial < 500; ++trial) {
    NdpInstruction i;
    const Opcode ops[] = {Opcode::kNop, Opcode::kGemm, Opcode::kGemmRelu, Opcode::kGemmGelu,
                          Opcode::kBarrier};
    i.opcode = ops[rng.next_below(5)];
    i.act_in = {rng.next_u64(), rng.next_u64()};
    i.weight = {rng.next_u64(), rng.next_u64()};
    i.act_out = {rng.next_u64(), rng.next_u64()};
    i.is_ndp = (rng.next_u64() & 1) != 0;
    i.act_fn = static_cast<ActFn>(rng.next_below(3));
    i.expert_id = static_cast<std::uint16_t>(rng.next_u64());
    i.layer_id = static_cast<std::uint16_t>(rng.next_u64());
    i.device_id = static_cast<std::uint8_t>(rng.next_u64());
    i.token_count = static_cast<std::uint32_t>(rng.next_below(1u << 20));
    i.kernel_seq = static_cast<std::uint16_t>(rng.next_u64());
    EXPECT_EQ(decode(encode(i)), i);
  }
}

TEST(Instruction, WireSizeIs64Bytes) {
  static_assert(sizeof(InstructionBytes) == 64, "CXL RwD payload must be 64 bytes");
  SUCCEED();
}

TEST(Instruction, OpcodeInLowNibbleOfByte0) {
  NdpInstruction i = sample_instruction();
  i.opcode = Opcode::kGemm;  // == 1
  const InstructionBytes bytes = encode(i);
  EXPECT_EQ(bytes[0] & 0x0F, 1);
}

TEST(Instruction, TokenCountOverflowRejected) {
  NdpInstruction i = sample_instruction();
  i.token_count = 1u << 20;
  EXPECT_THROW((void)encode(i), Error);
}

TEST(Instruction, ReservedOpcodeRejected) {
  NdpInstruction i = sample_instruction();
  i.opcode = static_cast<Opcode>(9);
  EXPECT_THROW((void)encode(i), Error);

  // Craft a wire instruction with a reserved opcode.
  InstructionBytes bytes = encode(sample_instruction());
  bytes[0] = static_cast<std::uint8_t>((bytes[0] & 0xF0) | 0x0F);
  EXPECT_THROW((void)decode(bytes), Error);
}

TEST(Instruction, IsNdpFlitFlag) {
  NdpInstruction i = sample_instruction();
  i.is_ndp = true;
  EXPECT_TRUE(is_ndp_flit(encode(i)));
  i.is_ndp = false;
  EXPECT_FALSE(is_ndp_flit(encode(i)));
}

}  // namespace
}  // namespace monde::interconnect
