// Unit tests for the analytics: memory footprints (Figure 2(a)/(b),
// Equations 1-2) and the Table 3 area/power model.
#include <gtest/gtest.h>

#include "analysis/area_power.hpp"
#include "analysis/footprint.hpp"
#include "common/error.hpp"

namespace monde::analysis {
namespace {

TEST(Footprint, SwitchLargeRow) {
  const FootprintRow row = footprint(moe::MoeModelConfig::switch_large_128());
  EXPECT_EQ(row.num_experts, 128);
  EXPECT_NEAR(row.expert.as_gb(), 51.5, 1.0);
  EXPECT_NEAR(row.non_expert.as_gb(), 1.1, 0.2);
  EXPECT_NEAR(row.total().as_gb(), 52.6, 1.2);
}

TEST(Footprint, ExpertScalingSweepMonotone) {
  const auto rows = expert_scaling_sweep(moe::MoeModelConfig::switch_large_128());
  ASSERT_EQ(rows.size(), 5u);  // Dense, E=64, 128, 256, 512
  EXPECT_EQ(rows[0].num_experts, 0);
  EXPECT_EQ(rows[0].expert.count(), 0u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].expert.count(), rows[i - 1].expert.count());
    // Non-expert params do not change with E among the MoE variants. (The
    // dense baseline keeps its FFNs, so its non-expert share is larger.)
    EXPECT_EQ(rows[i].non_expert.count(), rows[1].non_expert.count());
  }
  EXPECT_GT(rows[0].non_expert.count(), rows[1].non_expert.count());
  // Expert bytes scale linearly with E (Figure 2(a)'s asymptotic linearity).
  EXPECT_NEAR(static_cast<double>(rows[2].expert.count()) /
                  static_cast<double>(rows[1].expert.count()),
              2.0, 1e-9);
}

TEST(Footprint, Figure2aScaleGapVsDense) {
  // Paper narrative: Switch-Large-128 needs ~34x the memory of T5-Large.
  const auto t5 = footprint(moe::MoeModelConfig::t5_large_dense());
  const auto sl = footprint(moe::MoeModelConfig::switch_large_128());
  const double ratio = static_cast<double>(sl.total().count()) /
                       static_cast<double>(t5.total().count());
  EXPECT_GT(ratio, 25.0);
  EXPECT_LT(ratio, 45.0);
}

TEST(Movement, Equation1FullParameterMovement) {
  // PMove = 2 * E * dmodel * dff elements.
  const auto m = moe::MoeModelConfig::nllb_moe_128();
  const Bytes v = pmove_volume_full(m);
  EXPECT_EQ(v.count(), 2ull * 128 * 2048 * 8192 * 2);
}

TEST(Movement, OnDemandPmoveScalesWithActivated) {
  const auto m = moe::MoeModelConfig::nllb_moe_128();
  EXPECT_EQ(pmove_volume(m, 0).count(), 0u);
  EXPECT_EQ(pmove_volume(m, 10).count(), m.expert_bytes().count() * 10);
  EXPECT_EQ(pmove_volume(m, 128).count(), pmove_volume_full(m).count());
  EXPECT_THROW((void)pmove_volume(m, 129), Error);
  EXPECT_THROW((void)pmove_volume(m, -1), Error);
}

TEST(Movement, Equation2ActivationMovement) {
  // AMove = 2 * B * S * dmodel elements.
  const auto m = moe::MoeModelConfig::nllb_moe_128();
  const Bytes v = amove_volume(m, 4, 512);
  EXPECT_EQ(v.count(), 2ull * 4 * 512 * 2048 * 2);
  // The headline gap: full PMove is ~780x AMove for this configuration.
  EXPECT_GT(pmove_volume_full(m).count(), 500u * v.count());
}

TEST(Movement, DmodelSweepRatioGrowsLinearly) {
  // Figure 2(b): expert/activation ratio grows ~linearly with dmodel when
  // dff = 4*dmodel (quadratic expert vs linear activation scaling).
  const auto rows = dmodel_scaling_sweep({768, 1024, 1536, 2048, 2560, 4096}, 6144);
  ASSERT_EQ(rows.size(), 6u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].expert_to_act_ratio, rows[i - 1].expert_to_act_ratio);
  }
  const double slope0 = rows[1].expert_to_act_ratio / rows[0].expert_to_act_ratio;
  const double dm_ratio =
      static_cast<double>(rows[1].dmodel) / static_cast<double>(rows[0].dmodel);
  EXPECT_NEAR(slope0, dm_ratio, 0.05);
}

TEST(AreaPower, ReproducesTable3Exactly) {
  const AreaPowerModel model;
  const NdpAreaPowerReport r = model.evaluate(ndp::NdpSpec::monde_dac24());
  EXPECT_NEAR(r.pe_array.area_mm2, 2.042, 1e-9);
  EXPECT_NEAR(r.array_control.area_mm2, 0.053, 1e-9);
  EXPECT_NEAR(r.scratchpad.area_mm2, 0.289, 1e-9);
  EXPECT_NEAR(r.operand_bufs.area_mm2, 0.570, 1e-9);
  EXPECT_NEAR(r.pe_array.power_w, 0.993, 1e-9);
  EXPECT_NEAR(r.array_control.power_w, 0.033, 1e-9);
  EXPECT_NEAR(r.scratchpad.power_w, 0.258, 1e-9);
  EXPECT_NEAR(r.operand_bufs.power_w, 0.526, 1e-9);
  // Paper: ~3.0 mm^2 total area overhead.
  EXPECT_NEAR(r.total().area_mm2, 2.954, 0.01);
  EXPECT_NEAR(r.total().power_w, 1.81, 0.01);
}

TEST(AreaPower, NdpPowerOverheadMatchesPaper) {
  const AreaPowerModel model;
  // Paper: base memory device 114.2 W; NDP adds ~1.6%.
  const double base = model.base_device_power_w(Bytes::gib(512), Bandwidth::gbps(512));
  EXPECT_NEAR(base, 114.2, 3.0);
  const double overhead = model.ndp_power_overhead(ndp::NdpSpec::monde_dac24(),
                                                   Bytes::gib(512), Bandwidth::gbps(512));
  EXPECT_NEAR(overhead, 0.016, 0.003);
}

TEST(AreaPower, DramEquivalentArea) {
  const AreaPowerModel model;
  // Paper: 3.0 mm^2 corresponds to ~0.9 Gb of target DRAM cells.
  EXPECT_NEAR(model.dram_equivalent_gb(3.0), 0.9, 0.05);
}

TEST(AreaPower, ScalesWithUnits) {
  const AreaPowerModel model;
  ndp::NdpSpec half = ndp::NdpSpec::monde_dac24();
  half.num_units = 32;
  const auto r_half = model.evaluate(half);
  const auto r_full = model.evaluate(ndp::NdpSpec::monde_dac24());
  EXPECT_NEAR(r_half.pe_array.area_mm2 * 2.0, r_full.pe_array.area_mm2, 1e-9);
  EXPECT_NEAR(r_half.array_control.area_mm2 * 2.0, r_full.array_control.area_mm2, 1e-9);
  // Buffers unchanged.
  EXPECT_NEAR(r_half.scratchpad.area_mm2, r_full.scratchpad.area_mm2, 1e-9);
}

TEST(AreaPower, DynamicPowerScalesWithClock) {
  const AreaPowerModel model;
  ndp::NdpSpec fast = ndp::NdpSpec::monde_dac24().rate_matched(2.0);
  const auto r_fast = model.evaluate(fast);
  const auto r_base = model.evaluate(ndp::NdpSpec::monde_dac24());
  EXPECT_NEAR(r_fast.total().power_w, 2.0 * r_base.total().power_w, 1e-9);
  EXPECT_NEAR(r_fast.total().area_mm2, r_base.total().area_mm2, 1e-9);
}

}  // namespace
}  // namespace monde::analysis
